// Package pmc synthesizes hardware performance-monitor counters (PMCs)
// from the simulator's task counters, standing in for the real counters
// the paper collects with PAPI on Cascade Lake.
//
// Section 5.1 selects 8 events as workload characteristics for the
// correlation function f(·): LLC_MPKI, IPC, PRF_Miss, MEM_WCY, L2_LD_Miss,
// BR_MSP, VEC_INS and L3_LD_Miss (in decreasing Gini importance). This
// package exposes those eight plus a wider set, so the feature-selection
// study (Figure 7) can eliminate events one at a time exactly as the paper
// does. It also provides the PEBS/IBS-style sampled attribution of memory
// accesses to data objects used by the online refinement of α (Section 4).
package pmc

import (
	"math"
	"math/rand"

	"merchandiser/internal/hm"
)

// Event names, ordered by the paper's reported Gini importance for the
// first eight. The remaining events are the "all collectable events" pool
// used during model selection.
const (
	LLCMPKI  = "LLC_MPKI"   // last-level-cache misses per kilo-instruction
	IPC      = "IPC"        // instructions per cycle
	PRFMiss  = "PRF_Miss"   // useless-prefetch ratio
	MemWCY   = "MEM_WCY"    // memory write cycles per kilo-instruction
	L2LDMiss = "L2_LD_Miss" // L2 load misses per kilo-instruction
	BRMSP    = "BR_MSP"     // branch misprediction ratio
	VECIns   = "VEC_INS"    // vector-instruction fraction
	L3LDMiss = "L3_LD_Miss" // L3 load miss ratio
	L1LDMiss = "L1_LD_Miss"
	TLBMiss  = "TLB_Miss"
	StallCYC = "STALL_CYC"
	MemIns   = "MEM_INS"
	FPIns    = "FP_INS"
	PageFLT  = "PAGE_FLT"
	UopsRet  = "UOPS_RET"
	CtxSW    = "CTX_SW"
)

// SelectedEvents are the paper's final 8 workload characteristics, in
// decreasing importance.
var SelectedEvents = []string{
	LLCMPKI, IPC, PRFMiss, MemWCY, L2LDMiss, BRMSP, VECIns, L3LDMiss,
}

// AllEvents is the full collectable set (selected events first).
var AllEvents = []string{
	LLCMPKI, IPC, PRFMiss, MemWCY, L2LDMiss, BRMSP, VECIns, L3LDMiss,
	L1LDMiss, TLBMiss, StallCYC, MemIns, FPIns, PageFLT, UopsRet, CtxSW,
}

// instructionsPerAccess is the average number of retired instructions per
// program-level element access (address generation, load/store, ALU op).
const instructionsPerAccess = 4

// baseIPC is the core's issue rate when not memory-stalled.
const baseIPC = 2.0

// Counters is a named event vector.
type Counters struct {
	Task   string
	Values map[string]float64
}

// Vector projects the counters onto the given event ordering; missing
// events read 0.
func (c Counters) Vector(events []string) []float64 {
	return c.VectorInto(make([]float64, 0, len(events)), events)
}

// VectorInto appends the projection onto dst and returns the extended
// slice — the allocation-free form for hot paths that reuse a scratch
// buffer across calls (pass dst[:0] to overwrite it).
func (c Counters) VectorInto(dst []float64, events []string) []float64 {
	for _, e := range events {
		dst = append(dst, c.Values[e])
	}
	return dst
}

// Collect synthesizes the full event set from one task's simulation
// counters. spec provides the clock for cycle-denominated events.
//
// Every event is a deterministic function of the same microarchitectural
// quantities it measures on real hardware: cache misses, pipeline
// utilization, prefetcher success, pattern regularity. That is precisely
// what the correlation function needs the events to summarize.
func Collect(spec hm.SystemSpec, tc hm.TaskCounters) Counters {
	freq := spec.CoreGHz * 1e9
	instructions := tc.ComputeSeconds*freq*baseIPC + tc.ProgramAccesses*instructionsPerAccess
	if instructions <= 0 {
		instructions = 1
	}
	cycles := tc.FinishTime * freq
	if cycles <= 0 {
		cycles = 1
	}
	kiloInstr := instructions / 1000

	v := map[string]float64{}
	v[LLCMPKI] = tc.MainAccesses / kiloInstr
	v[IPC] = instructions / cycles
	v[PRFMiss] = tc.AvgPrefetchMiss
	v[MemWCY] = tc.WriteFraction * tc.MainAccesses / kiloInstr * 4 // write-queue occupancy proxy
	v[L2LDMiss] = tc.MainAccesses * 1.35 / kiloInstr               // some L2 misses hit in L3
	v[BRMSP] = 0.01 + 0.08*(1-tc.RegularFraction)
	v[VECIns] = 0.05 + 0.45*tc.RegularFraction
	loadAccesses := tc.ProgramAccesses * (1 - tc.WriteFraction)
	if loadAccesses <= 0 {
		loadAccesses = 1
	}
	v[L3LDMiss] = math.Min(1, tc.MainAccesses*(1-tc.WriteFraction)/loadAccesses)

	// Wider pool.
	v[L1LDMiss] = math.Min(1, v[L3LDMiss]*3+0.02)
	v[TLBMiss] = 0.001 + 0.02*(1-tc.RegularFraction)
	v[StallCYC] = tc.StallSeconds * freq / cycles
	v[MemIns] = tc.ProgramAccesses / instructions
	v[FPIns] = 0.1 + 0.3*math.Min(1, tc.ComputeSeconds/math.Max(tc.FinishTime, 1e-9))
	v[PageFLT] = tc.MemBytes / float64(spec.PageSize) * 1e-6
	v[UopsRet] = instructions * 1.2
	v[CtxSW] = 0 // pinned HPC tasks do not context-switch

	// Real counters carry measurement noise (multiplexing, non-determinism
	// of speculative execution). A deterministic per-(task, event) jitter
	// of up to ±8% models it — one reason a single event cannot carry the
	// correlation function and the paper selects eight (Figure 7).
	for name := range v {
		h := uint64(1469598103934665603)
		for _, c := range tc.Name + "\x00" + name {
			h ^= uint64(c)
			h *= 1099511628211
		}
		v[name] *= 1 + 0.08*(float64(h%2001)/1000-1)
	}

	return Counters{Task: tc.Name, Values: v}
}

// Sampler models PEBS (Intel) / IBS (AMD) sampled attribution of memory
// accesses to data objects: only one in Rate accesses is observed, and the
// per-object estimate is the observed count scaled back up, so small
// counts carry large relative error — the profiling-error mechanism the
// paper's runtime refinement of α must tolerate.
type Sampler struct {
	// Rate is the sampling period (one sample per Rate accesses);
	// PEBS defaults to the order of 10k.
	Rate float64
	rng  *rand.Rand
}

// NewSampler builds a sampler with the given period and seed.
func NewSampler(rate float64, seed int64) *Sampler {
	if rate < 1 {
		rate = 1
	}
	return &Sampler{Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Estimate returns the sampled estimate of trueCount accesses: the number
// of Poisson(trueCount/Rate) observed samples scaled back by Rate.
func (s *Sampler) Estimate(trueCount float64) float64 {
	if trueCount <= 0 {
		return 0
	}
	lambda := trueCount / s.Rate
	return float64(s.poisson(lambda)) * s.Rate
}

// EstimatePerObject samples each object's access count independently,
// as PEBS attributes each sample to an address (and thus an object).
func (s *Sampler) EstimatePerObject(trueCounts map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(trueCounts))
	for k, v := range trueCounts {
		out[k] = s.Estimate(v)
	}
	return out
}

// poisson draws a Poisson variate; for large lambda it uses the normal
// approximation to stay O(1).
func (s *Sampler) poisson(lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := lambda + math.Sqrt(lambda)*s.rng.NormFloat64()
		if n < 0 {
			return 0
		}
		return int64(n + 0.5)
	}
	// Knuth's method for small lambda.
	l := math.Exp(-lambda)
	var k int64
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
