package pmc

import (
	"math"
	"testing"

	"merchandiser/internal/hm"
)

func memBoundCounters() hm.TaskCounters {
	return hm.TaskCounters{
		Name:            "membound",
		FinishTime:      2.0,
		ComputeSeconds:  0.2,
		ProgramAccesses: 1e9,
		MainAccesses:    5e8,
		DRAMAccesses:    1e8,
		PMAccesses:      4e8,
		MemBytes:        5e8 * 64,
		AvgMLP:          2.2,
		AvgPrefetchMiss: 0.85,
		RegularFraction: 0.1,
		WriteFraction:   0.2,
		StallSeconds:    1.5,
	}
}

func computeBoundCounters() hm.TaskCounters {
	return hm.TaskCounters{
		Name:            "cpubound",
		FinishTime:      2.0,
		ComputeSeconds:  1.9,
		ProgramAccesses: 1e8,
		MainAccesses:    1e6,
		DRAMAccesses:    1e6,
		MemBytes:        1e6 * 64,
		AvgMLP:          9,
		AvgPrefetchMiss: 0.05,
		RegularFraction: 0.95,
		WriteFraction:   0.1,
		StallSeconds:    0.05,
	}
}

func TestCollectDiscriminatesBoundedness(t *testing.T) {
	spec := hm.DefaultSpec()
	mem := Collect(spec, memBoundCounters())
	cpu := Collect(spec, computeBoundCounters())

	if mem.Values[LLCMPKI] <= cpu.Values[LLCMPKI] {
		t.Fatalf("memory-bound LLC_MPKI (%v) should exceed compute-bound (%v)",
			mem.Values[LLCMPKI], cpu.Values[LLCMPKI])
	}
	if mem.Values[IPC] >= cpu.Values[IPC] {
		t.Fatalf("memory-bound IPC (%v) should be below compute-bound (%v)",
			mem.Values[IPC], cpu.Values[IPC])
	}
	if mem.Values[PRFMiss] <= cpu.Values[PRFMiss] {
		t.Fatal("irregular task should have worse prefetch")
	}
	if mem.Values[BRMSP] <= cpu.Values[BRMSP] {
		t.Fatal("irregular task should mispredict more")
	}
	if mem.Values[VECIns] >= cpu.Values[VECIns] {
		t.Fatal("regular task should vectorize more")
	}
	if mem.Values[StallCYC] <= cpu.Values[StallCYC] {
		t.Fatal("memory-bound task should stall more")
	}
}

func TestCollectBounds(t *testing.T) {
	spec := hm.DefaultSpec()
	for _, tc := range []hm.TaskCounters{memBoundCounters(), computeBoundCounters(), {Name: "empty"}} {
		c := Collect(spec, tc)
		for _, e := range AllEvents {
			v, ok := c.Values[e]
			if !ok {
				t.Fatalf("event %s missing for %s", e, tc.Name)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("event %s = %v for %s", e, v, tc.Name)
			}
		}
		for _, e := range []string{PRFMiss, BRMSP, L3LDMiss, L1LDMiss, StallCYC} {
			if c.Values[e] < 0 || c.Values[e] > 1.0001 {
				t.Fatalf("ratio event %s = %v out of [0,1] for %s", e, c.Values[e], tc.Name)
			}
		}
	}
}

func TestVectorProjection(t *testing.T) {
	c := Counters{Values: map[string]float64{IPC: 1.5, LLCMPKI: 20}}
	v := c.Vector([]string{LLCMPKI, IPC, "NOPE"})
	if v[0] != 20 || v[1] != 1.5 || v[2] != 0 {
		t.Fatalf("Vector = %v", v)
	}
	if len(SelectedEvents) != 8 {
		t.Fatalf("paper selects 8 events, got %d", len(SelectedEvents))
	}
	// Selected events are a prefix of AllEvents and unique.
	seen := map[string]bool{}
	for i, e := range SelectedEvents {
		if AllEvents[i] != e {
			t.Fatalf("AllEvents[%d] = %s, want %s", i, AllEvents[i], e)
		}
		if seen[e] {
			t.Fatalf("duplicate event %s", e)
		}
		seen[e] = true
	}
}

func TestSamplerUnbiasedAndNoisy(t *testing.T) {
	s := NewSampler(1000, 42)
	trueCount := 5e6
	var sum float64
	n := 200
	sawDifferent := false
	prev := -1.0
	for i := 0; i < n; i++ {
		e := s.Estimate(trueCount)
		sum += e
		if prev >= 0 && e != prev {
			sawDifferent = true
		}
		prev = e
	}
	mean := sum / float64(n)
	if math.Abs(mean-trueCount)/trueCount > 0.02 {
		t.Fatalf("sampler biased: mean %v vs true %v", mean, trueCount)
	}
	if !sawDifferent {
		t.Fatal("sampler produced identical estimates — no sampling noise")
	}
	if s.Estimate(0) != 0 {
		t.Fatal("zero count should estimate zero")
	}
}

func TestSamplerSmallCountsNoisier(t *testing.T) {
	relErr := func(trueCount float64) float64 {
		s := NewSampler(1000, 7)
		var sumSq float64
		n := 300
		for i := 0; i < n; i++ {
			d := (s.Estimate(trueCount) - trueCount) / trueCount
			sumSq += d * d
		}
		return math.Sqrt(sumSq / float64(n))
	}
	small := relErr(5e3) // ~5 expected samples
	large := relErr(5e6) // ~5000 expected samples
	if small <= large {
		t.Fatalf("small counts should be noisier: %v vs %v", small, large)
	}
}

func TestEstimatePerObject(t *testing.T) {
	s := NewSampler(100, 3)
	got := s.EstimatePerObject(map[string]float64{"A": 1e6, "B": 0})
	if got["B"] != 0 {
		t.Fatal("zero-access object should stay zero")
	}
	if got["A"] <= 0 {
		t.Fatal("active object should be observed")
	}
}

func TestNewSamplerClampsRate(t *testing.T) {
	s := NewSampler(0, 1)
	if s.Rate != 1 {
		t.Fatalf("rate = %v, want clamped to 1", s.Rate)
	}
	// Rate 1 sampling of small counts is near-exact.
	if got := s.Estimate(50); math.Abs(got-50) > 25 {
		t.Fatalf("rate-1 estimate = %v, want near 50", got)
	}
}
