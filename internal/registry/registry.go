// Package registry is the on-disk versioned model registry behind a
// serving fleet: a directory of immutable published artifacts plus an
// atomically-updated CURRENT pointer naming the version every replica
// should serve. It is the deployment half of the train-once/serve-many
// split — merchbench publishes and promotes, merchserved resolves and
// (on SIGHUP or POST /reloadz) re-resolves.
//
// Layout under the registry root:
//
//	models/<version>/artifact.merch   — the published artifact, immutable
//	models/<version>/artifact.sha256  — its SHA-256, recorded at publish
//	CURRENT                           — "<version>\n", the promoted version
//	PREVIOUS                          — the version CURRENT replaced
//
// Every pointer write goes through store.AtomicWriteFile (write, fsync,
// rename, fsync directory entry), so a crash never leaves a torn or
// unsynced promotion. Publishing verifies the artifact decodes and
// records its digest; resolving re-verifies the digest, so bit rot or a
// tampered artifact fails loudly as merr.ErrBadArtifact instead of
// being served.
package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"merchandiser/internal/merr"
	"merchandiser/internal/store"
)

const (
	modelsDir    = "models"
	artifactName = "artifact.merch"
	shaName      = "artifact.sha256"
	currentFile  = "CURRENT"
	previousFile = "PREVIOUS"
)

// Entry describes one published version.
type Entry struct {
	Version string `json:"version"`
	Path    string `json:"path"`
	SHA256  string `json:"sha256"`
	Bytes   int64  `json:"bytes"`
	// Current reports whether this version is the promoted one.
	Current bool `json:"current"`
}

// Registry is a handle on a registry root directory. Methods are safe
// for concurrent use within a process; cross-process safety comes from
// every mutation being an atomic rename.
type Registry struct {
	root string
	mu   sync.Mutex
}

func badf(format string, args ...any) error {
	return merr.Errorf(merr.ErrBadArtifact, "registry: "+format, args...)
}

// Open opens (creating if needed) the registry rooted at root.
func Open(root string) (*Registry, error) {
	if root == "" {
		return nil, badf("empty registry root")
	}
	if err := os.MkdirAll(filepath.Join(root, modelsDir), 0o755); err != nil {
		return nil, fmt.Errorf("registry: open %s: %w", root, err)
	}
	return &Registry{root: root}, nil
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

// validVersion bounds version names to safe path components: the same
// character set as artifact section names, no traversal, max 64 bytes.
func validVersion(v string) bool {
	if v == "" || len(v) > 64 {
		return false
	}
	for _, c := range v {
		ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.'
		if !ok {
			return false
		}
	}
	return v != "." && v != ".."
}

func (r *Registry) versionDir(v string) string {
	return filepath.Join(r.root, modelsDir, v)
}

// ArtifactPath returns where a version's artifact lives (whether or not
// it is published yet).
func (r *Registry) ArtifactPath(v string) string {
	return filepath.Join(r.versionDir(v), artifactName)
}

// Publish copies the artifact at src into the registry as version, after
// verifying it decodes as a well-formed artifact, and records its
// SHA-256. Versions are immutable: publishing an existing version fails.
func (r *Registry) Publish(version, src string) (Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !validVersion(version) {
		return Entry{}, badf("invalid version name %q", version)
	}
	dir := r.versionDir(version)
	if _, err := os.Stat(filepath.Join(dir, artifactName)); err == nil {
		return Entry{}, badf("version %q is already published (versions are immutable)", version)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return Entry{}, fmt.Errorf("registry: publish %s: %w", version, err)
	}
	// Integrity gate: the registry never stores bytes that do not decode
	// as an artifact (strict: magic, manifest, per-section checksums).
	if _, err := store.Decode(bytes.NewReader(data)); err != nil {
		return Entry{}, fmt.Errorf("registry: publish %s: %w", version, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Entry{}, fmt.Errorf("registry: publish %s: %w", version, err)
	}
	dst := filepath.Join(dir, artifactName)
	if err := store.AtomicWriteFile(dst, data); err != nil {
		return Entry{}, err
	}
	// Record the digest of what actually landed on disk, not of the
	// source buffer — re-reading closes the loop on the copy itself.
	sum, n, err := store.FileSHA256(dst)
	if err != nil {
		return Entry{}, err
	}
	if err := store.AtomicWriteFile(filepath.Join(dir, shaName), []byte(sum+"\n")); err != nil {
		return Entry{}, err
	}
	return Entry{Version: version, Path: dst, SHA256: sum, Bytes: n}, nil
}

// recordedSHA reads the digest file a publish left behind.
func (r *Registry) recordedSHA(version string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(r.versionDir(version), shaName))
	if err != nil {
		return "", fmt.Errorf("registry: version %s: %w", version, err)
	}
	return strings.TrimSpace(string(raw)), nil
}

// Verify recomputes the artifact digest for version and checks it
// against the digest recorded at publish time.
func (r *Registry) Verify(version string) (Entry, error) {
	if !validVersion(version) {
		return Entry{}, badf("invalid version name %q", version)
	}
	want, err := r.recordedSHA(version)
	if err != nil {
		return Entry{}, err
	}
	path := r.ArtifactPath(version)
	got, n, err := store.FileSHA256(path)
	if err != nil {
		return Entry{}, err
	}
	if got != want {
		return Entry{}, badf("version %s is corrupt: recorded sha %.16s…, file hashes %.16s…", version, want, got)
	}
	return Entry{Version: version, Path: path, SHA256: got, Bytes: n}, nil
}

// Promote makes version the fleet's CURRENT, verifying its integrity
// first and remembering the displaced version in PREVIOUS for Rollback.
// Both pointer writes are atomic and directory-fsynced.
func (r *Registry) Promote(version string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := r.Verify(version); err != nil {
		return err
	}
	cur, err := r.currentLocked()
	if err == nil && cur == version {
		return nil // already current; keep PREVIOUS meaningful
	}
	if err == nil && cur != "" {
		if err := store.AtomicWriteFile(filepath.Join(r.root, previousFile), []byte(cur+"\n")); err != nil {
			return err
		}
	}
	return store.AtomicWriteFile(filepath.Join(r.root, currentFile), []byte(version+"\n"))
}

// Rollback re-promotes the version recorded in PREVIOUS (the one the
// last Promote displaced) and returns it.
func (r *Registry) Rollback() (string, error) {
	raw, err := os.ReadFile(filepath.Join(r.root, previousFile))
	if err != nil {
		return "", fmt.Errorf("registry: rollback: no previous version: %w", err)
	}
	prev := strings.TrimSpace(string(raw))
	if err := r.Promote(prev); err != nil {
		return "", err
	}
	return prev, nil
}

func (r *Registry) currentLocked() (string, error) {
	raw, err := os.ReadFile(filepath.Join(r.root, currentFile))
	if err != nil {
		return "", merr.Errorf(merr.ErrNotReady, "registry: no version promoted: %v", err)
	}
	v := strings.TrimSpace(string(raw))
	if !validVersion(v) {
		return "", badf("CURRENT names invalid version %q", v)
	}
	return v, nil
}

// Current resolves the promoted version, re-verifying the artifact's
// digest — what a replica loads at boot and on reload. Before any
// promotion it fails with merr.ErrNotReady.
func (r *Registry) Current() (Entry, error) {
	r.mu.Lock()
	v, err := r.currentLocked()
	r.mu.Unlock()
	if err != nil {
		return Entry{}, err
	}
	e, err := r.Verify(v)
	if err != nil {
		return Entry{}, err
	}
	e.Current = true
	return e, nil
}

// List returns every published version in sorted order, with the
// promoted one flagged.
func (r *Registry) List() ([]Entry, error) {
	ents, err := os.ReadDir(filepath.Join(r.root, modelsDir))
	if err != nil {
		return nil, fmt.Errorf("registry: list: %w", err)
	}
	r.mu.Lock()
	cur, _ := r.currentLocked()
	r.mu.Unlock()
	var out []Entry
	for _, de := range ents {
		if !de.IsDir() || !validVersion(de.Name()) {
			continue
		}
		v := de.Name()
		sum, err := r.recordedSHA(v)
		if err != nil {
			continue // half-published directory; not a served version
		}
		path := r.ArtifactPath(v)
		info, err := os.Stat(path)
		if err != nil {
			continue
		}
		out = append(out, Entry{Version: v, Path: path, SHA256: sum, Bytes: info.Size(), Current: v == cur})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, nil
}
