package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"merchandiser/internal/merr"
	"merchandiser/internal/store"
)

// writeArtifact writes a minimal valid artifact to dir and returns its
// path. seq varies the payload so distinct calls produce distinct SHAs.
func writeArtifact(t *testing.T, dir string, seq int) string {
	t.Helper()
	a := &store.Artifact{Tool: "registry-test"}
	if err := a.SetJSON("meta.seq", map[string]int{"seq": seq}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("src-%d.merch", seq))
	if err := store.WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPublishPromoteResolve(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(filepath.Join(dir, "reg"))
	if err != nil {
		t.Fatal(err)
	}

	// Before any promotion, Current is ErrNotReady.
	if _, err := r.Current(); !errors.Is(err, merr.ErrNotReady) {
		t.Fatalf("Current before promote: %v, want ErrNotReady", err)
	}

	e1, err := r.Publish("v1", writeArtifact(t, dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Version != "v1" || e1.SHA256 == "" || e1.Bytes <= 0 {
		t.Fatalf("bad publish entry: %+v", e1)
	}
	// Published but not promoted: still not ready.
	if _, err := r.Current(); !errors.Is(err, merr.ErrNotReady) {
		t.Fatalf("Current before promote: %v, want ErrNotReady", err)
	}

	if err := r.Promote("v1"); err != nil {
		t.Fatal(err)
	}
	cur, err := r.Current()
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != "v1" || cur.SHA256 != e1.SHA256 || !cur.Current {
		t.Fatalf("bad current: %+v", cur)
	}

	e2, err := r.Publish("v2", writeArtifact(t, dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if e2.SHA256 == e1.SHA256 {
		t.Fatal("distinct artifacts hashed identically")
	}
	if err := r.Promote("v2"); err != nil {
		t.Fatal(err)
	}
	cur, err = r.Current()
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != "v2" {
		t.Fatalf("current after second promote: %+v", cur)
	}

	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Version != "v1" || list[1].Version != "v2" {
		t.Fatalf("bad list: %+v", list)
	}
	if list[0].Current || !list[1].Current {
		t.Fatalf("list current flags wrong: %+v", list)
	}

	// Rollback returns to v1.
	prev, err := r.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if prev != "v1" {
		t.Fatalf("rollback promoted %q, want v1", prev)
	}
	cur, err = r.Current()
	if err != nil || cur.Version != "v1" {
		t.Fatalf("current after rollback: %+v, %v", cur, err)
	}
}

func TestPublishRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(filepath.Join(dir, "reg"))
	if err != nil {
		t.Fatal(err)
	}
	good := writeArtifact(t, dir, 1)

	// Invalid version names never touch the disk.
	for _, v := range []string{"", "..", "a/b", "V1", "x y", string(make([]byte, 65))} {
		if _, err := r.Publish(v, good); !errors.Is(err, merr.ErrBadArtifact) {
			t.Fatalf("Publish(%q): %v, want ErrBadArtifact", v, err)
		}
	}

	// Garbage bytes are refused by the decode gate.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("vjunk", junk); !errors.Is(err, merr.ErrBadArtifact) {
		t.Fatalf("Publish(junk): %v, want ErrBadArtifact", err)
	}
	if _, err := os.Stat(r.versionDir("vjunk")); !os.IsNotExist(err) {
		t.Fatal("rejected publish left a version directory behind")
	}

	// Versions are immutable: re-publishing fails.
	if _, err := r.Publish("v1", good); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("v1", writeArtifact(t, dir, 2)); !errors.Is(err, merr.ErrBadArtifact) {
		t.Fatalf("re-publish: %v, want ErrBadArtifact", err)
	}

	// Promoting an unpublished version fails.
	if err := r.Promote("ghost"); err == nil {
		t.Fatal("promoted an unpublished version")
	}
}

func TestCorruptionDetectedOnResolve(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(filepath.Join(dir, "reg"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("v1", writeArtifact(t, dir, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote("v1"); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the stored artifact: Current must refuse to serve it.
	path := r.ArtifactPath("v1")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Current(); !errors.Is(err, merr.ErrBadArtifact) {
		t.Fatalf("Current on corrupt artifact: %v, want ErrBadArtifact", err)
	}
	if _, err := r.Verify("v1"); !errors.Is(err, merr.ErrBadArtifact) {
		t.Fatalf("Verify on corrupt artifact: %v, want ErrBadArtifact", err)
	}
}

// TestConcurrentPublishPromote races publishers and promoters against a
// resolver; every successful Current() must name a version that was
// fully published (digest verified).
func TestConcurrentPublishPromote(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(filepath.Join(dir, "reg"))
	if err != nil {
		t.Fatal(err)
	}
	const versions = 8
	var wg sync.WaitGroup
	for i := 0; i < versions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := fmt.Sprintf("v%03d", i)
			if _, err := r.Publish(v, writeArtifact(t, dir, i)); err != nil {
				t.Errorf("publish %s: %v", v, err)
				return
			}
			if err := r.Promote(v); err != nil {
				t.Errorf("promote %s: %v", v, err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			cur, err := r.Current()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.Verify(cur.Version); err != nil {
				t.Fatal(err)
			}
			list, err := r.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(list) != versions {
				t.Fatalf("list has %d versions, want %d", len(list), versions)
			}
			return
		default:
			if cur, err := r.Current(); err == nil {
				if _, verr := r.Verify(cur.Version); verr != nil {
					t.Fatalf("resolved a half-published version %s: %v", cur.Version, verr)
				}
			}
		}
	}
}
