package merr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestErrorClassification(t *testing.T) {
	err := Errorf(ErrCapacity, "hm: tier %v full", "PM")
	if !errors.Is(err, ErrCapacity) {
		t.Fatal("not classified as ErrCapacity")
	}
	if errors.Is(err, ErrBadSpec) {
		t.Fatal("misclassified as ErrBadSpec")
	}
	if got := err.Error(); got != "hm: tier PM full" {
		t.Fatalf("message %q carries taxonomy noise", got)
	}
	var e *Error
	if !errors.As(err, &e) || e.Kind != ErrCapacity {
		t.Fatal("errors.As failed to recover *Error")
	}
}

func TestCanceledUnwrapsBothWays(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx, "hm: run canceled")
	if !errors.Is(err, ErrCanceled) {
		t.Fatal("not classified as ErrCanceled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("context.Canceled not reachable through Unwrap")
	}
	if got := err.Error(); got != "hm: run canceled: context canceled" {
		t.Fatalf("message %q", got)
	}
}

func TestFromContextLiveAndNil(t *testing.T) {
	if err := FromContext(context.Background(), "x"); err != nil {
		t.Fatalf("live context yielded %v", err)
	}
	if err := FromContext(nil, "x"); err != nil { //nolint:staticcheck // nil-tolerance is the contract
		t.Fatalf("nil context yielded %v", err)
	}
}

func TestBadArtifactClassification(t *testing.T) {
	cause := fmt.Errorf("unexpected EOF")
	err := Wrap(ErrBadArtifact, "store: section truncated", cause)
	if !errors.Is(err, ErrBadArtifact) {
		t.Fatal("not classified as ErrBadArtifact")
	}
	if !errors.Is(err, cause) {
		t.Fatal("cause not reachable through Unwrap")
	}
	if errors.Is(err, ErrNotReady) || errors.Is(err, ErrBadSpec) {
		t.Fatal("misclassified under a sibling kind")
	}
	if got := err.Error(); got != "store: section truncated: unexpected EOF" {
		t.Fatalf("message %q", got)
	}
}

func TestNotReadyClassification(t *testing.T) {
	err := Errorf(ErrNotReady, "serve: no artifact loaded")
	if !errors.Is(err, ErrNotReady) {
		t.Fatal("not classified as ErrNotReady")
	}
	if errors.Is(err, ErrBadArtifact) || errors.Is(err, ErrUntrained) {
		t.Fatal("misclassified under a sibling kind")
	}
	var e *Error
	if !errors.As(err, &e) || e.Kind != ErrNotReady {
		t.Fatal("errors.As failed to recover *Error")
	}
	if got := err.Error(); got != "serve: no artifact loaded" {
		t.Fatalf("message %q carries taxonomy noise", got)
	}
}

func TestWrapPreservesCauseChain(t *testing.T) {
	cause := fmt.Errorf("disk on fire")
	err := Wrap(ErrUntrained, "model: fit failed", cause)
	if !errors.Is(err, ErrUntrained) || !errors.Is(err, cause) {
		t.Fatal("wrap lost kind or cause")
	}
	if got := err.Error(); got != "model: fit failed: disk on fire" {
		t.Fatalf("message %q", got)
	}
}
