// Package merr is the typed error taxonomy shared by every layer of the
// reproduction. Package boundaries (the hm simulator, the task runtime,
// the training pipeline, the policy registry and the public surface) wrap
// their failures in an *Error carrying one of the sentinel kinds below, so
// callers classify failures with errors.Is instead of string matching:
//
//	if errors.Is(err, merr.ErrCapacity) { ... }
//
// An *Error unwraps to both its kind and its cause (multi-error Unwrap),
// so a canceled run satisfies errors.Is(err, merr.ErrCanceled) AND
// errors.Is(err, context.Canceled) at the same time.
package merr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel kinds. Each classifies one failure family across the codebase.
var (
	// ErrCanceled marks a run, training round or evaluation aborted by
	// its context. The cause (context.Canceled or
	// context.DeadlineExceeded) is wrapped alongside it.
	ErrCanceled = errors.New("merchandiser: canceled")
	// ErrCapacity marks a memory tier running out of pages during
	// allocation or migration.
	ErrCapacity = errors.New("merchandiser: tier capacity exhausted")
	// ErrUntrained marks a model that cannot be trained or used (too few
	// samples, predict before fit).
	ErrUntrained = errors.New("merchandiser: model untrained")
	// ErrBadSpec marks an invalid platform specification.
	ErrBadSpec = errors.New("merchandiser: invalid system spec")
	// ErrBadApp marks an invalid application definition (no tasks, zero
	// object sizes, dangling references).
	ErrBadApp = errors.New("merchandiser: invalid application")
	// ErrUnknownPolicy marks a policy name absent from the registry.
	ErrUnknownPolicy = errors.New("merchandiser: unknown policy")
	// ErrBadArtifact marks a saved artifact that cannot be decoded: wrong
	// magic, unsupported schema version, truncated sections, checksum
	// mismatches, or payloads that fail strict validation.
	ErrBadArtifact = errors.New("merchandiser: bad artifact")
	// ErrNotReady marks a serving component asked to do work before its
	// artifact (trained system) has been loaded.
	ErrNotReady = errors.New("merchandiser: not ready")
	// ErrQuota marks a DRAM placement refused by a tenant's quota rather
	// than by the tier's physical capacity. Callers that treat a full tier
	// as "stop migrating" can treat a quota refusal as "skip this tenant".
	ErrQuota = errors.New("merchandiser: tenant DRAM quota exhausted")
)

// Error is a classified error: a taxonomy kind, the human-readable
// message, and an optional wrapped cause.
type Error struct {
	Kind error  // one of the sentinels above
	Msg  string // message, formatted exactly as the pre-taxonomy errors were
	Err  error  // wrapped cause, may be nil
}

// Error implements error. The string is the message (plus the cause, if
// any) — the kind does not repeat in the text, keeping messages identical
// to the pre-taxonomy fmt.Errorf output.
func (e *Error) Error() string {
	switch {
	case e.Err == nil:
		return e.Msg
	case e.Msg == "":
		return e.Err.Error()
	default:
		return e.Msg + ": " + e.Err.Error()
	}
}

// Unwrap exposes both the kind and the cause to errors.Is/As.
func (e *Error) Unwrap() []error {
	out := make([]error, 0, 2)
	if e.Kind != nil {
		out = append(out, e.Kind)
	}
	if e.Err != nil {
		out = append(out, e.Err)
	}
	return out
}

// Errorf builds a classified error with a formatted message.
func Errorf(kind error, format string, args ...any) error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies an existing error under kind with a message prefix.
// A nil err yields a message-only classified error.
func Wrap(kind error, msg string, err error) error {
	return &Error{Kind: kind, Msg: msg, Err: err}
}

// Canceled wraps a context's termination error (context.Canceled or
// context.DeadlineExceeded) as an ErrCanceled with the given message.
func Canceled(msg string, cause error) error {
	return &Error{Kind: ErrCanceled, Msg: msg, Err: cause}
}

// FromContext returns a Canceled error if ctx is done, else nil. It is
// the one-line cancellation check used at tick, instance, region and
// fold boundaries.
func FromContext(ctx context.Context, msg string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return Canceled(msg, err)
	}
	return nil
}
