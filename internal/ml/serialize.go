package ml

import (
	"fmt"
	"math"

	"merchandiser/internal/merr"
	"merchandiser/internal/obs"
)

// This file is the serialization boundary of the model zoo: fitted trees
// and ensembles dump to flat, JSON-friendly structures and load back
// without any refitting, so a restored model predicts bit-for-bit what
// the original did (tree walks replay the same float64 comparisons in
// the same order). Runtime knobs that do not affect predictions —
// worker counts, observability registries — are deliberately excluded
// from the dumps and re-attached at load time via LoadOptions.
//
// Loading validates strictly: node indices must describe a well-formed
// tree (every node reachable exactly once, children after parents),
// every float must be finite, and ensemble shapes must be consistent.
// Violations surface as merr.ErrBadArtifact so the artifact store's
// callers classify a corrupt checkpoint without string matching.

// NodeDump is one flattened tree node. Internal nodes carry the split
// (Feature, Threshold) and child indices; leaves carry the prediction.
type NodeDump struct {
	Feature   int     `json:"f,omitempty"`
	Threshold float64 `json:"t,omitempty"`
	Left      int     `json:"l,omitempty"`
	Right     int     `json:"r,omitempty"`
	Value     float64 `json:"v,omitempty"`
	Leaf      bool    `json:"leaf,omitempty"`
}

// TreeDump is a fitted DecisionTree in flat form: nodes in preorder
// (index 0 is the root), plus the config and normalized importances.
type TreeDump struct {
	Config      TreeConfig `json:"config"`
	Nodes       []NodeDump `json:"nodes"`
	Importances []float64  `json:"importances,omitempty"`
}

// GBRParams are the GradientBoosted hyperparameters that shape the
// fitted model (GBRConfig minus the runtime knobs Workers and Obs).
type GBRParams struct {
	NumStages      int     `json:"num_stages"`
	LearningRate   float64 `json:"learning_rate"`
	MaxDepth       int     `json:"max_depth"`
	MinSamplesLeaf int     `json:"min_samples_leaf,omitempty"`
	Subsample      float64 `json:"subsample"`
	Seed           int64   `json:"seed"`
}

// GBRDump is a fitted GradientBoosted model.
type GBRDump struct {
	Params      GBRParams  `json:"params"`
	Base        float64    `json:"base"`
	Trees       []TreeDump `json:"trees"`
	Importances []float64  `json:"importances,omitempty"`
}

// ForestParams are the RandomForest hyperparameters (ForestConfig minus
// Workers).
type ForestParams struct {
	NumTrees       int   `json:"num_trees"`
	MaxDepth       int   `json:"max_depth"`
	MinSamplesLeaf int   `json:"min_samples_leaf,omitempty"`
	MaxFeatures    int   `json:"max_features,omitempty"`
	Seed           int64 `json:"seed"`
}

// ForestDump is a fitted RandomForest.
type ForestDump struct {
	Params      ForestParams `json:"params"`
	Trees       []TreeDump   `json:"trees"`
	Importances []float64    `json:"importances,omitempty"`
}

// ModelDump is the tagged union the artifact store persists: exactly one
// of the model fields is set, and Kind names it (the Table 3
// abbreviation the model's Name() returns).
type ModelDump struct {
	Kind   string      `json:"kind"`
	GBR    *GBRDump    `json:"gbr,omitempty"`
	Forest *ForestDump `json:"forest,omitempty"`
	Tree   *TreeDump   `json:"tree,omitempty"`
}

// LoadOptions re-attaches the runtime knobs excluded from dumps.
type LoadOptions struct {
	// Workers bounds PredictAll concurrency of the loaded model (0 uses
	// runtime.NumCPU()). Predictions are identical for any value.
	Workers int
	// Obs, when non-nil, receives the loaded model's predict counters and
	// timers — fit counters stay untouched, which is how tests prove the
	// restore path does zero training work.
	Obs *obs.Registry
}

func badModel(format string, args ...any) error {
	return merr.Errorf(merr.ErrBadArtifact, "ml: "+format, args...)
}

// dumpNode flattens the subtree rooted at n in preorder, returning the
// node's index.
func dumpNode(n *treeNode, nodes *[]NodeDump) int {
	idx := len(*nodes)
	*nodes = append(*nodes, NodeDump{})
	if n.leaf {
		(*nodes)[idx] = NodeDump{Value: n.value, Leaf: true}
		return idx
	}
	l := dumpNode(n.left, nodes)
	r := dumpNode(n.right, nodes)
	(*nodes)[idx] = NodeDump{Feature: n.feature, Threshold: n.threshold, Left: l, Right: r}
	return idx
}

// Dump flattens a fitted tree. Unfitted trees return ErrNotFitted.
// The nodes are re-emitted from the compiled table, which preserves the
// preorder flattening exactly: dumping a restored tree reproduces the
// bytes it was loaded from.
func (t *DecisionTree) Dump() (*TreeDump, error) {
	if !t.fitted {
		return nil, ErrNotFitted
	}
	return &TreeDump{
		Config:      t.Config,
		Nodes:       t.flat.dump(),
		Importances: append([]float64(nil), t.importances...),
	}, nil
}

// loadFrom compiles the dump straight into the flat inference table —
// no pointer tree is rebuilt — with the compiler enforcing
// well-formedness (every node reachable exactly once, in-range
// children, finite floats).
func (t *DecisionTree) loadFrom(d *TreeDump) error {
	flat, err := compileDump(d.Nodes)
	if err != nil {
		return err
	}
	t.flat = flat
	t.importances = append([]float64(nil), d.Importances...)
	t.fitted = true
	return nil
}

// LoadTree reconstructs a fitted tree from its dump without refitting.
func LoadTree(d *TreeDump) (*DecisionTree, error) {
	if d == nil {
		return nil, badModel("nil tree dump")
	}
	if err := checkImportances(d.Importances); err != nil {
		return nil, err
	}
	t := NewDecisionTree(d.Config)
	if err := t.loadFrom(d); err != nil {
		return nil, err
	}
	return t, nil
}

// Dump flattens a fitted GBR. Unfitted models return ErrNotFitted.
func (g *GradientBoosted) Dump() (*GBRDump, error) {
	if !g.fitted {
		return nil, ErrNotFitted
	}
	d := &GBRDump{
		Params: GBRParams{
			NumStages:      g.Config.NumStages,
			LearningRate:   g.Config.LearningRate,
			MaxDepth:       g.Config.MaxDepth,
			MinSamplesLeaf: g.Config.MinSamplesLeaf,
			Subsample:      g.Config.Subsample,
			Seed:           g.Config.Seed,
		},
		Base:        g.base,
		Importances: append([]float64(nil), g.importances...),
	}
	if g.trees == nil {
		// Flat-restored model: decompile the kernel table back to the
		// canonical preorder dumps (bit-identical to the originals).
		dumps, err := treeDumpsFromTable(&g.compiled.tab, g.flatMeta)
		if err != nil {
			return nil, err
		}
		d.Trees = dumps
		return d, nil
	}
	for _, t := range g.trees {
		td, err := t.Dump()
		if err != nil {
			return nil, err
		}
		d.Trees = append(d.Trees, *td)
	}
	return d, nil
}

// LoadGBR reconstructs a fitted GradientBoosted model. The result
// predicts bit-for-bit what the dumped model did; no fitting happens
// (and none is recorded on opt.Obs).
func LoadGBR(d *GBRDump, opt LoadOptions) (*GradientBoosted, error) {
	if d == nil {
		return nil, badModel("nil GBR dump")
	}
	if len(d.Trees) == 0 {
		return nil, badModel("GBR dump has no trees")
	}
	if !isFinite(d.Base) {
		return nil, badModel("GBR base prediction is non-finite")
	}
	if !isFinite(d.Params.LearningRate) || d.Params.LearningRate <= 0 {
		return nil, badModel("GBR learning rate %v out of range", d.Params.LearningRate)
	}
	if err := checkImportances(d.Importances); err != nil {
		return nil, err
	}
	// The JSON load path pays a full re-compile (every tree's node list is
	// decoded, validated, and re-packed into the kernel table); count and
	// time it so restore paths that skip it — the binary flat form — are
	// provably compile-free (the counter stays absent from snapshots).
	opt.Obs.Counter("ml.compiles").Inc()
	defer opt.Obs.WallTimer("ml.compile_seconds").Start()()
	g := NewGradientBoosted(GBRConfig{
		NumStages:      d.Params.NumStages,
		LearningRate:   d.Params.LearningRate,
		MaxDepth:       d.Params.MaxDepth,
		MinSamplesLeaf: d.Params.MinSamplesLeaf,
		Subsample:      d.Params.Subsample,
		Seed:           d.Params.Seed,
		Workers:        opt.Workers,
		Obs:            opt.Obs,
	})
	g.base = d.Base
	for i := range d.Trees {
		t, err := LoadTree(&d.Trees[i])
		if err != nil {
			return nil, err
		}
		g.trees = append(g.trees, t)
	}
	g.importances = append([]float64(nil), d.Importances...)
	g.fitted = true
	// The loaded model is born compiled: its stage tables concatenate
	// into the flat ensemble the predict paths walk.
	compiled, err := compileGBR(g.base, g.Config.LearningRate, g.trees, opt.Workers)
	if err != nil {
		return nil, err
	}
	g.compiled = compiled
	return g, nil
}

// Dump flattens a fitted forest. Unfitted models return ErrNotFitted.
func (f *RandomForest) Dump() (*ForestDump, error) {
	if !f.fitted {
		return nil, ErrNotFitted
	}
	d := &ForestDump{
		Params: ForestParams{
			NumTrees:       f.Config.NumTrees,
			MaxDepth:       f.Config.MaxDepth,
			MinSamplesLeaf: f.Config.MinSamplesLeaf,
			MaxFeatures:    f.Config.MaxFeatures,
			Seed:           f.Config.Seed,
		},
		Importances: append([]float64(nil), f.importances...),
	}
	if f.trees == nil {
		dumps, err := treeDumpsFromTable(&f.compiled.tab, f.flatMeta)
		if err != nil {
			return nil, err
		}
		d.Trees = dumps
		return d, nil
	}
	for _, t := range f.trees {
		td, err := t.Dump()
		if err != nil {
			return nil, err
		}
		d.Trees = append(d.Trees, *td)
	}
	return d, nil
}

// LoadForest reconstructs a fitted RandomForest without refitting.
func LoadForest(d *ForestDump, opt LoadOptions) (*RandomForest, error) {
	if d == nil {
		return nil, badModel("nil forest dump")
	}
	if len(d.Trees) == 0 {
		return nil, badModel("forest dump has no trees")
	}
	if err := checkImportances(d.Importances); err != nil {
		return nil, err
	}
	// See LoadGBR: the JSON path's re-compile is metered so the binary
	// flat path can prove it never compiles.
	opt.Obs.Counter("ml.compiles").Inc()
	defer opt.Obs.WallTimer("ml.compile_seconds").Start()()
	f := NewRandomForest(ForestConfig{
		NumTrees:       d.Params.NumTrees,
		MaxDepth:       d.Params.MaxDepth,
		MinSamplesLeaf: d.Params.MinSamplesLeaf,
		MaxFeatures:    d.Params.MaxFeatures,
		Seed:           d.Params.Seed,
		Workers:        opt.Workers,
	})
	for i := range d.Trees {
		t, err := LoadTree(&d.Trees[i])
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, t)
	}
	f.importances = append([]float64(nil), d.Importances...)
	f.fitted = true
	compiled, err := compileForest(f.trees, opt.Workers)
	if err != nil {
		return nil, err
	}
	f.compiled = compiled
	return f, nil
}

// DumpModel flattens any serializable fitted regressor into the tagged
// union. Models outside the persistable zoo (SVR, KNN, MLP — never
// selected by the paper's pipeline) are rejected.
func DumpModel(m Regressor) (*ModelDump, error) {
	switch v := m.(type) {
	case *GradientBoosted:
		d, err := v.Dump()
		if err != nil {
			return nil, err
		}
		return &ModelDump{Kind: v.Name(), GBR: d}, nil
	case *RandomForest:
		d, err := v.Dump()
		if err != nil {
			return nil, err
		}
		return &ModelDump{Kind: v.Name(), Forest: d}, nil
	case *DecisionTree:
		d, err := v.Dump()
		if err != nil {
			return nil, err
		}
		return &ModelDump{Kind: v.Name(), Tree: d}, nil
	default:
		return nil, fmt.Errorf("ml: model %s is not serializable", m.Name())
	}
}

// LoadModel reconstructs the regressor a ModelDump describes. Exactly
// one payload must be set and must agree with Kind.
func LoadModel(d *ModelDump, opt LoadOptions) (Regressor, error) {
	if d == nil {
		return nil, badModel("nil model dump")
	}
	set := 0
	for _, p := range []bool{d.GBR != nil, d.Forest != nil, d.Tree != nil} {
		if p {
			set++
		}
	}
	if set != 1 {
		return nil, badModel("model dump kind %q has %d payloads, want exactly 1", d.Kind, set)
	}
	switch {
	case d.GBR != nil:
		if d.Kind != "GBR" {
			return nil, badModel("model dump kind %q does not match GBR payload", d.Kind)
		}
		return LoadGBR(d.GBR, opt)
	case d.Forest != nil:
		if d.Kind != "RFR" {
			return nil, badModel("model dump kind %q does not match forest payload", d.Kind)
		}
		return LoadForest(d.Forest, opt)
	default:
		if d.Kind != "DTR" {
			return nil, badModel("model dump kind %q does not match tree payload", d.Kind)
		}
		return LoadTree(d.Tree)
	}
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// checkImportances accepts an empty slice or a finite non-negative
// weight vector (the fit paths normalize to sum 1, but a constant model
// legitimately dumps all zeros).
func checkImportances(im []float64) error {
	for i, v := range im {
		if !isFinite(v) || v < 0 {
			return badModel("importance %d is %v, want finite non-negative", i, v)
		}
	}
	return nil
}
