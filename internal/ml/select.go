package ml

import (
	"errors"
	"fmt"
)

// EliminationStep records one round of the paper's recursive feature
// elimination: the feature set in use, the trained model's test R², and
// which feature was dropped next (empty on the final step).
type EliminationStep struct {
	Features []string
	R2       float64
	Dropped  string
}

// RecursiveFeatureElimination implements Section 5.1's event selection:
// train on all features, measure test accuracy, remove the feature with
// the lowest (Gini) importance, retrain, and repeat until minKeep features
// remain. newModel must return a fresh Importancer-capable regressor.
//
// The returned steps run from the full feature set down to minKeep
// features; Figure 7 plots their R² against feature count.
func RecursiveFeatureElimination(
	newModel func() Regressor,
	Xtr [][]float64, ytr []float64,
	Xte [][]float64, yte []float64,
	features []string,
	minKeep int,
) ([]EliminationStep, error) {
	if len(Xtr) == 0 || len(Xte) == 0 {
		return nil, errors.New("ml: empty train or test set")
	}
	if len(features) != len(Xtr[0]) {
		return nil, fmt.Errorf("ml: %d feature names but %d columns", len(features), len(Xtr[0]))
	}
	if minKeep < 1 {
		minKeep = 1
	}

	active := make([]int, len(features)) // active[i] = original column index
	for i := range active {
		active[i] = i
	}
	var steps []EliminationStep

	for len(active) >= minKeep {
		xtr := projectColumns(Xtr, active)
		xte := projectColumns(Xte, active)
		m := newModel()
		if err := m.Fit(xtr, ytr); err != nil {
			return nil, err
		}
		r2, err := R2Score(m, xte, yte)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(active))
		for i, c := range active {
			names[i] = features[c]
		}
		step := EliminationStep{Features: names, R2: r2}

		if len(active) > minKeep {
			imp, ok := m.(Importancer)
			if !ok {
				return nil, fmt.Errorf("ml: model %s does not expose importances", m.Name())
			}
			importances := imp.Importances()
			worst := 0
			for i := 1; i < len(importances); i++ {
				if importances[i] < importances[worst] {
					worst = i
				}
			}
			step.Dropped = features[active[worst]]
			active = append(active[:worst], active[worst+1:]...)
		} else {
			active = active[:0] // terminate after recording the last step
		}
		steps = append(steps, step)
	}
	return steps, nil
}

// ProjectColumns selects the given columns of X into a new matrix.
func ProjectColumns(X [][]float64, cols []int) [][]float64 {
	return projectColumns(X, cols)
}

// projectColumns selects the given columns of X.
func projectColumns(X [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		row := make([]float64, len(cols))
		for j, c := range cols {
			row[j] = r[c]
		}
		out[i] = row
	}
	return out
}

// RankFeatures trains one model on all features and returns the feature
// names sorted by decreasing importance — how the paper arrives at the
// ordering "LLC_MPKI, IPC, PRF_Miss, ..." of Section 5.1.
func RankFeatures(newModel func() Regressor, X [][]float64, y []float64, features []string) ([]string, error) {
	if len(X) == 0 || len(features) != len(X[0]) {
		return nil, errors.New("ml: bad feature naming")
	}
	m := newModel()
	if err := m.Fit(X, y); err != nil {
		return nil, err
	}
	imp, ok := m.(Importancer)
	if !ok {
		return nil, fmt.Errorf("ml: model %s does not expose importances", m.Name())
	}
	iv := imp.Importances()
	order := make([]int, len(features))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by decreasing importance (tiny n).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && iv[order[j]] > iv[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]string, len(order))
	for i, c := range order {
		out[i] = features[c]
	}
	return out, nil
}
