package ml

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"merchandiser/internal/merr"
	"merchandiser/internal/obs"
	"merchandiser/internal/stats"
)

// EliminationStep records one round of the paper's recursive feature
// elimination: the feature set in use, the trained model's test R², and
// which feature was dropped next (empty on the final step).
type EliminationStep struct {
	Features []string
	R2       float64
	Dropped  string
}

// RecursiveFeatureElimination implements Section 5.1's event selection:
// train on all features, measure test accuracy, remove the feature with
// the lowest (Gini) importance, retrain, and repeat until minKeep features
// remain. newModel must return a fresh Importancer-capable regressor.
//
// The returned steps run from the full feature set down to minKeep
// features; Figure 7 plots their R² against feature count.
func RecursiveFeatureElimination(
	newModel func() Regressor,
	Xtr [][]float64, ytr []float64,
	Xte [][]float64, yte []float64,
	features []string,
	minKeep int,
) ([]EliminationStep, error) {
	if len(Xtr) == 0 || len(Xte) == 0 {
		return nil, errors.New("ml: empty train or test set")
	}
	if len(features) != len(Xtr[0]) {
		return nil, fmt.Errorf("ml: %d feature names but %d columns", len(features), len(Xtr[0]))
	}
	if minKeep < 1 {
		minKeep = 1
	}

	active := make([]int, len(features)) // active[i] = original column index
	for i := range active {
		active[i] = i
	}
	var steps []EliminationStep

	for len(active) >= minKeep {
		xtr := projectColumns(Xtr, active)
		xte := projectColumns(Xte, active)
		m := newModel()
		if err := m.Fit(xtr, ytr); err != nil {
			return nil, err
		}
		r2, err := R2Score(m, xte, yte)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(active))
		for i, c := range active {
			names[i] = features[c]
		}
		step := EliminationStep{Features: names, R2: r2}

		if len(active) > minKeep {
			imp, ok := m.(Importancer)
			if !ok {
				return nil, fmt.Errorf("ml: model %s does not expose importances", m.Name())
			}
			importances := imp.Importances()
			worst := 0
			for i := 1; i < len(importances); i++ {
				if importances[i] < importances[worst] {
					worst = i
				}
			}
			step.Dropped = features[active[worst]]
			active = append(active[:worst], active[worst+1:]...)
		} else {
			active = active[:0] // terminate after recording the last step
		}
		steps = append(steps, step)
	}
	return steps, nil
}

// ProjectColumns selects the given columns of X into a new matrix.
func ProjectColumns(X [][]float64, cols []int) [][]float64 {
	return projectColumns(X, cols)
}

// projectColumns selects the given columns of X.
func projectColumns(X [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		row := make([]float64, len(cols))
		for j, c := range cols {
			row[j] = r[c]
		}
		out[i] = row
	}
	return out
}

// SubsetScore is one candidate feature subset's cross-validated accuracy.
type SubsetScore struct {
	// Columns are the candidate's column indices into X.
	Columns []int
	// Features are the corresponding feature names.
	Features []string
	// FoldR2 is the held-out R² of each fold, MeanR2 their average.
	FoldR2 []float64
	MeanR2 float64
}

// CrossValidateSubsets scores candidate feature subsets (column-index sets
// into X) by k-fold cross-validation, the subset-search counterpart of the
// paper's §5.1 event selection: instead of one 70/30 split per elimination
// step, each candidate subset is trained k times and judged on its mean
// held-out R².
//
// Candidates are evaluated concurrently on up to `workers` goroutines
// (0 = runtime.NumCPU()). The fold assignment is derived from seed alone
// and scores are returned in candidate order, so the result is identical
// for any worker count (given a deterministic newModel).
func CrossValidateSubsets(
	newModel func() Regressor,
	X [][]float64, y []float64,
	features []string,
	candidates [][]int,
	folds int,
	seed int64,
	workers int,
) ([]SubsetScore, error) {
	return CrossValidateSubsetsObs(newModel, X, y, features, candidates, CVOptions{
		Folds: folds, Seed: seed, Workers: workers,
	})
}

// CVOptions tunes CrossValidateSubsetsObs.
type CVOptions struct {
	// Ctx, when non-nil, cancels the search: workers stop claiming
	// candidates and the call returns an error satisfying
	// errors.Is(err, context.Canceled) within one fold fit.
	Ctx context.Context
	// Folds is the k of k-fold CV (min 2, default 5, capped at n).
	Folds int
	// Seed derives the shared fold assignment.
	Seed int64
	// Workers bounds candidate-level concurrency (0 = runtime.NumCPU()).
	Workers int
	// Obs, when non-nil, receives per-candidate mean-R² observations
	// (ml.cv.mean_r2), the candidate count (ml.cv.candidates) and the best
	// score (ml.cv.best_r2). Recorded after the parallel join in candidate
	// order, so the metrics are identical for any worker count.
	Obs *obs.Registry
}

// CrossValidateSubsetsObs is CrossValidateSubsets with an options struct
// and optional metrics recording.
func CrossValidateSubsetsObs(
	newModel func() Regressor,
	X [][]float64, y []float64,
	features []string,
	candidates [][]int,
	opt CVOptions,
) ([]SubsetScore, error) {
	scores, err := crossValidateSubsets(opt.Ctx, newModel, X, y, features, candidates, opt.Folds, opt.Seed, opt.Workers)
	if err != nil {
		return nil, err
	}
	if reg := opt.Obs; reg != nil {
		hist := reg.HistogramBuckets("ml.cv.mean_r2", []float64{-1, 0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1})
		for _, s := range scores {
			hist.Observe(s.MeanR2)
		}
		reg.Counter("ml.cv.candidates").Add(float64(len(scores)))
		if best := BestSubset(scores); best >= 0 {
			reg.Gauge("ml.cv.best_r2").Set(scores[best].MeanR2)
		}
	}
	return scores, nil
}

func crossValidateSubsets(
	ctx context.Context,
	newModel func() Regressor,
	X [][]float64, y []float64,
	features []string,
	candidates [][]int,
	folds int,
	seed int64,
	workers int,
) ([]SubsetScore, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validate(X, y); err != nil {
		return nil, err
	}
	if len(features) != len(X[0]) {
		return nil, fmt.Errorf("ml: %d feature names but %d columns", len(features), len(X[0]))
	}
	if len(candidates) == 0 {
		return nil, errors.New("ml: no candidate subsets")
	}
	n := len(X)
	if folds < 2 {
		folds = 5
	}
	if folds > n {
		folds = n
	}
	for ci, cand := range candidates {
		if len(cand) == 0 {
			return nil, fmt.Errorf("ml: candidate %d is empty", ci)
		}
		for _, c := range cand {
			if c < 0 || c >= len(features) {
				return nil, fmt.Errorf("ml: candidate %d references column %d of %d", ci, c, len(features))
			}
		}
	}

	// One shuffled fold assignment shared by every candidate, so subsets
	// compete on the same splits.
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	foldOf := make([]int, n)
	for k, i := range perm {
		foldOf[i] = k % folds
	}

	scores := make([]SubsetScore, len(candidates))
	errs := make([]error, len(candidates))
	parallelChunks(len(candidates), workers, func(lo, hi int) {
		for ci := lo; ci < hi && ctx.Err() == nil; ci++ {
			scores[ci], errs[ci] = scoreSubset(ctx, newModel, X, y, features, candidates[ci], foldOf, folds)
		}
	})
	if err := merr.FromContext(ctx, "ml: cross-validation canceled"); err != nil {
		return nil, err
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return scores, nil
}

func scoreSubset(ctx context.Context, newModel func() Regressor, X [][]float64, y []float64, features []string, cand []int, foldOf []int, folds int) (SubsetScore, error) {
	px := projectColumns(X, cand)
	score := SubsetScore{
		Columns:  append([]int(nil), cand...),
		Features: make([]string, len(cand)),
	}
	for i, c := range cand {
		score.Features[i] = features[c]
	}
	for k := 0; k < folds; k++ {
		var xtr, xte [][]float64
		var ytr, yte []float64
		for i := range px {
			if foldOf[i] == k {
				xte = append(xte, px[i])
				yte = append(yte, y[i])
			} else {
				xtr = append(xtr, px[i])
				ytr = append(ytr, y[i])
			}
		}
		if len(xtr) == 0 || len(xte) == 0 {
			continue
		}
		m := newModel()
		if err := Fit(ctx, m, xtr, ytr); err != nil {
			return SubsetScore{}, err
		}
		r2, err := stats.R2(yte, PredictBatch(m, xte))
		if err != nil {
			return SubsetScore{}, err
		}
		score.FoldR2 = append(score.FoldR2, r2)
	}
	if len(score.FoldR2) == 0 {
		return SubsetScore{}, errors.New("ml: no usable folds")
	}
	var s float64
	for _, v := range score.FoldR2 {
		s += v
	}
	score.MeanR2 = s / float64(len(score.FoldR2))
	return score, nil
}

// BestSubset returns the index of the highest-scoring candidate (first
// wins ties), or -1 for an empty slice.
func BestSubset(scores []SubsetScore) int {
	best := -1
	for i, s := range scores {
		if best < 0 || s.MeanR2 > scores[best].MeanR2 {
			best = i
		}
	}
	return best
}

// RankFeatures trains one model on all features and returns the feature
// names sorted by decreasing importance — how the paper arrives at the
// ordering "LLC_MPKI, IPC, PRF_Miss, ..." of Section 5.1.
func RankFeatures(newModel func() Regressor, X [][]float64, y []float64, features []string) ([]string, error) {
	if len(X) == 0 || len(features) != len(X[0]) {
		return nil, errors.New("ml: bad feature naming")
	}
	m := newModel()
	if err := m.Fit(X, y); err != nil {
		return nil, err
	}
	imp, ok := m.(Importancer)
	if !ok {
		return nil, fmt.Errorf("ml: model %s does not expose importances", m.Name())
	}
	iv := imp.Importances()
	order := make([]int, len(features))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by decreasing importance (tiny n).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && iv[order[j]] > iv[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]string, len(order))
	for i, c := range order {
		out[i] = features[c]
	}
	return out, nil
}
