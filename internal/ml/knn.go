package ml

import (
	"sort"
)

// KNNConfig configures the K-Neighbors regressor (Table 3: n_neighbors=8).
type KNNConfig struct {
	K int
}

// KNN is a brute-force K-nearest-neighbors regressor over standardized
// features with uniform weighting.
type KNN struct {
	Config KNNConfig

	scaler *scaler
	X      [][]float64
	y      []float64
	fitted bool
}

// NewKNN builds an unfitted KNN.
func NewKNN(cfg KNNConfig) *KNN {
	if cfg.K <= 0 {
		cfg.K = 8
	}
	return &KNN{Config: cfg}
}

// Name implements Regressor.
func (k *KNN) Name() string { return "KNR" }

// Fit implements Regressor (it memorizes the standardized training set).
func (k *KNN) Fit(X [][]float64, y []float64) error {
	if err := validate(X, y); err != nil {
		return err
	}
	k.scaler = fitScaler(X)
	k.X = k.scaler.transformAll(X)
	k.y = append([]float64(nil), y...)
	k.fitted = true
	return nil
}

// Predict implements Regressor.
func (k *KNN) Predict(x []float64) float64 {
	if !k.fitted {
		return 0
	}
	q := k.scaler.transform(x)
	type nd struct {
		d2 float64
		i  int
	}
	ds := make([]nd, len(k.X))
	for i, r := range k.X {
		var d2 float64
		for j := range r {
			dv := r[j] - q[j]
			d2 += dv * dv
		}
		ds[i] = nd{d2, i}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d2 < ds[b].d2 })
	kk := k.Config.K
	if kk > len(ds) {
		kk = len(ds)
	}
	var s float64
	for i := 0; i < kk; i++ {
		s += k.y[ds[i].i]
	}
	return s / float64(kk)
}
