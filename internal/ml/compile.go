package ml

// This file is the compiled inference engine: fitted trees are lowered
// into contiguous flat node tables (feature index, split threshold,
// int32 child indices, leaf value) that the placement hot path walks
// instead of the pointer-linked treeNodes built at fit time. The
// per-tree CompiledTree keeps struct-of-arrays columns in dump order;
// the ensemble kernel re-packs them into one interleaved record per
// node, laid out breadth-first so a walk advances by integer
// arithmetic with no data-dependent branch, and runs several
// independent walks in lockstep so their load chains overlap (see
// NodeRec). The batch kernel additionally iterates rows over one
// tree at a time in fixed row blocks so the tree's nodes stay cache-
// hot across the whole block.
//
// Compilation never changes a prediction: the compiled walk performs
// the identical float64 comparisons in the identical order as the
// pointer walk, and the ensemble kernels accumulate stages/trees in fit
// order per row, so every output is bit-identical to the pointer path
// (enforced by the differential tests in compile_test.go). Models
// compile themselves after Fit, and the serialization loaders build
// compiled tables directly from dumps — a restored model predicts
// without ever rebuilding a pointer tree.

import "math"

// leafNode marks a leaf in a node table's feature column.
const leafNode int32 = -1

// maxFeatureIndex bounds split feature indices so hostile dumps cannot
// overflow the int32 feature column (real models have single-digit
// feature counts).
const maxFeatureIndex = 1 << 20

// batchBlock is the batch kernel's row-block size: small enough that a
// block of row accumulators stays resident in L1, large enough to
// amortize re-walking the tree list per block.
const batchBlock = 256

// CompiledTree is one regression tree lowered to a flat node table.
// Index 0 is the root; internal nodes store the split feature and
// threshold, leaves store the prediction in the same value column.
type CompiledTree struct {
	feature []int32 // split feature, or leafNode
	left    []int32 // child node indices (internal nodes only)
	right   []int32
	val     []float64 // threshold (internal) or prediction (leaf)
}

// NumNodes returns the node-table size.
func (c *CompiledTree) NumNodes() int { return len(c.feature) }

// Predict walks the flat table; it allocates nothing.
func (c *CompiledTree) Predict(x []float64) float64 {
	i := int32(0)
	f := c.feature[i]
	for f >= 0 {
		if x[f] <= c.val[i] {
			i = c.left[i]
		} else {
			i = c.right[i]
		}
		f = c.feature[i]
	}
	return c.val[i]
}

// PredictAll evaluates every row of X.
func (c *CompiledTree) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = c.Predict(x)
	}
	return out
}

// compileDump lowers a flat preorder dump into a node table, enforcing
// the same well-formedness rules the pointer reconstruction used to:
// every node reachable from the root exactly once (no cycles, shared
// subtrees or dangling nodes), in-range child indices, finite floats.
// The table preserves the dump's node indices, so compile∘dump is the
// identity — which is what keeps re-snapshotting a restored model
// byte-identical to the original artifact.
func compileDump(nodes []NodeDump) (*CompiledTree, error) {
	n := len(nodes)
	if n == 0 {
		return nil, badModel("tree dump has no nodes")
	}
	c := &CompiledTree{
		feature: make([]int32, n),
		left:    make([]int32, n),
		right:   make([]int32, n),
		val:     make([]float64, n),
	}
	visited := make([]bool, n)
	// Iterative preorder DFS from the root, visiting each node at most
	// once — the flat-table analogue of the recursive buildNode walk.
	stack := make([]int, 1, 64)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i < 0 || i >= n {
			return nil, badModel("tree node index %d out of range [0,%d)", i, n)
		}
		if visited[i] {
			return nil, badModel("tree node %d referenced twice", i)
		}
		visited[i] = true
		nd := nodes[i]
		if nd.Leaf {
			if !isFinite(nd.Value) {
				return nil, badModel("tree leaf %d has non-finite value", i)
			}
			c.feature[i] = leafNode
			c.val[i] = nd.Value
			continue
		}
		if nd.Feature < 0 {
			return nil, badModel("tree node %d has negative feature index", i)
		}
		if nd.Feature > maxFeatureIndex {
			return nil, badModel("tree node %d has implausible feature index %d", i, nd.Feature)
		}
		if !isFinite(nd.Threshold) {
			return nil, badModel("tree node %d has non-finite threshold", i)
		}
		c.feature[i] = int32(nd.Feature)
		c.val[i] = nd.Threshold
		c.left[i] = int32(nd.Left)
		c.right[i] = int32(nd.Right)
		stack = append(stack, nd.Right, nd.Left)
	}
	for i, v := range visited {
		if !v {
			return nil, badModel("tree node %d unreachable from root", i)
		}
	}
	return c, nil
}

// dump re-emits the preorder node list the table was compiled from.
func (c *CompiledTree) dump() []NodeDump {
	nodes := make([]NodeDump, len(c.feature))
	for i, f := range c.feature {
		if f == leafNode {
			nodes[i] = NodeDump{Value: c.val[i], Leaf: true}
		} else {
			nodes[i] = NodeDump{
				Feature:   int(f),
				Threshold: c.val[i],
				Left:      int(c.left[i]),
				Right:     int(c.right[i]),
			}
		}
	}
	return nodes
}

// Compile returns the tree's flat inference engine. Fitted trees are
// always compiled (Fit and LoadTree both build the table), so this only
// fails on an unfitted tree.
func (t *DecisionTree) Compile() (*CompiledTree, error) {
	if !t.fitted || t.flat == nil {
		return nil, ErrNotFitted
	}
	return t.flat, nil
}

// NodeRec is one node of the ensemble kernel's table. The per-tree
// CompiledTree keeps struct-of-arrays columns (that is the dump-facing
// layout), but the walk loop touches every field of exactly one node
// per step, so the kernel interleaves the columns back into one
// 24-byte record: one bounds check and at most one cache-line fill per
// step instead of four of each across parallel slices. The table is
// laid out breadth-first with sibling nodes adjacent, so there is no
// right-child pointer: the right child lives at Left+1, and the walk
// advances with pure integer arithmetic (Left plus a materialized
// compare bit) instead of a data-dependent branch or conditional move.
// Leaves carry a +Inf threshold and point Left at themselves, so a
// walk that has reached its leaf parks there under further steps.
//
// NodeRec is also the serialization ABI of the compiled engine: the
// binary artifact format of internal/store persists exactly these
// records, 24 bytes each, little-endian, in table order (see flat.go),
// so a restored model's kernel table is a single contiguous read of
// the section payload.
type NodeRec struct {
	Thresh  float64 // split threshold; +Inf marks a leaf
	Pred    float64 // leaf prediction (0 on internal nodes)
	Feature int32   // split feature; 0 on leaves (a safe x index)
	Left    int32   // left child; right child is Left+1; leaves: self
}

// nodeTable is an ensemble's trees concatenated into one contiguous
// node table; roots[k] is tree k's root index and child indices are
// absolute, so a whole forest walks a single slice. depth[k] is tree
// k's height — the batch kernel walks every row exactly depth[k] steps
// (parked lanes self-loop), which lets it run several rows in lockstep
// with no per-step termination branch.
type nodeTable struct {
	nodes []NodeRec
	roots []int32
	depth []int32
}

// appendTree relays one compiled tree into the kernel table in
// breadth-first order, placing each internal node's children in
// adjacent slots and rebasing indices to be absolute.
func (nt *nodeTable) appendTree(c *CompiledTree) {
	off := int32(len(nt.nodes))
	nt.roots = append(nt.roots, off)
	nt.depth = append(nt.depth, treeHeight(c, 0))
	// order[j] is the preorder index of BFS slot j; children are
	// enqueued in pairs, which is what makes right = left+1 hold.
	order := make([]int32, 1, len(c.feature))
	newIdx := make([]int32, len(c.feature))
	for qi := 0; qi < len(order); qi++ {
		old := order[qi]
		if c.feature[old] == leafNode {
			continue
		}
		l, r := c.left[old], c.right[old]
		newIdx[l] = int32(len(order))
		newIdx[r] = int32(len(order) + 1)
		order = append(order, l, r)
	}
	inf := math.Inf(1)
	for j, old := range order {
		if c.feature[old] == leafNode {
			nt.nodes = append(nt.nodes, NodeRec{Thresh: inf, Pred: c.val[old], Left: off + int32(j)})
		} else {
			nt.nodes = append(nt.nodes, NodeRec{Thresh: c.val[old], Feature: c.feature[old], Left: off + newIdx[c.left[old]]})
		}
	}
}

// treeHeight is the longest root-to-leaf edge count of the subtree at i.
func treeHeight(c *CompiledTree, i int32) int32 {
	if c.feature[i] == leafNode {
		return 0
	}
	l := treeHeight(c, c.left[i])
	r := treeHeight(c, c.right[i])
	if r > l {
		l = r
	}
	return 1 + l
}

// walk evaluates the tree rooted at root in exactly d steps (the
// tree's height; lanes that reach their leaf early park on its +Inf
// threshold). It performs the identical split comparisons, in the
// identical order, as the pointer walk, so the returned leaf value is
// bit-identical. The child select is integer arithmetic on a
// materialized compare bit and the loop bound is fixed, so the walk
// has no data-dependent branch at all: split outcomes are coin flips
// the branch predictor cannot learn, and with no mispredicts the
// dependent load chains of consecutive walks overlap in the
// out-of-order window.
func (nt *nodeTable) walk(root, d int32, x []float64) float64 {
	nodes := nt.nodes
	i := root
	for s := int32(0); s < d; s++ {
		nd := nodes[i]
		b := int32(1)
		if x[nd.Feature] <= nd.Thresh {
			b = 0
		}
		i = nd.Left + b
	}
	return nodes[i].Pred
}

// accumulate returns init + Σ_t scale·tree_t(x), walking four trees in
// lockstep so their dependent load chains overlap (the lane depth is
// the max of the four heights; shorter lanes park on their leaf). The
// leaf values are still added in fit order, one at a time, so the
// result is bit-identical to accumulating sequential walks.
func (nt *nodeTable) accumulate(init, scale float64, x []float64) float64 {
	nodes := nt.nodes
	roots := nt.roots
	depth := nt.depth
	out := init
	k := 0
	for ; k+8 <= len(roots); k += 8 {
		i0, i1, i2, i3 := roots[k], roots[k+1], roots[k+2], roots[k+3]
		i4, i5, i6, i7 := roots[k+4], roots[k+5], roots[k+6], roots[k+7]
		d := depth[k]
		for _, dk := range depth[k+1 : k+8] {
			if dk > d {
				d = dk
			}
		}
		for s := int32(0); s < d; s++ {
			n0 := nodes[i0]
			b0 := int32(1)
			if x[n0.Feature] <= n0.Thresh {
				b0 = 0
			}
			i0 = n0.Left + b0
			n1 := nodes[i1]
			b1 := int32(1)
			if x[n1.Feature] <= n1.Thresh {
				b1 = 0
			}
			i1 = n1.Left + b1
			n2 := nodes[i2]
			b2 := int32(1)
			if x[n2.Feature] <= n2.Thresh {
				b2 = 0
			}
			i2 = n2.Left + b2
			n3 := nodes[i3]
			b3 := int32(1)
			if x[n3.Feature] <= n3.Thresh {
				b3 = 0
			}
			i3 = n3.Left + b3
			n4 := nodes[i4]
			b4 := int32(1)
			if x[n4.Feature] <= n4.Thresh {
				b4 = 0
			}
			i4 = n4.Left + b4
			n5 := nodes[i5]
			b5 := int32(1)
			if x[n5.Feature] <= n5.Thresh {
				b5 = 0
			}
			i5 = n5.Left + b5
			n6 := nodes[i6]
			b6 := int32(1)
			if x[n6.Feature] <= n6.Thresh {
				b6 = 0
			}
			i6 = n6.Left + b6
			n7 := nodes[i7]
			b7 := int32(1)
			if x[n7.Feature] <= n7.Thresh {
				b7 = 0
			}
			i7 = n7.Left + b7
		}
		out += scale * nodes[i0].Pred
		out += scale * nodes[i1].Pred
		out += scale * nodes[i2].Pred
		out += scale * nodes[i3].Pred
		out += scale * nodes[i4].Pred
		out += scale * nodes[i5].Pred
		out += scale * nodes[i6].Pred
		out += scale * nodes[i7].Pred
	}
	for ; k < len(roots); k++ {
		out += scale * nt.walk(roots[k], depth[k], x)
	}
	return out
}

// batchSum is the batch kernel: for rows [lo, hi) it computes
// out[i] = init + Σ_t scale·tree_t(X[i]), iterating trees in the outer
// loop over fixed row blocks so one tree's slice window stays cache-hot
// across the whole block. Within a block it walks four rows in
// lockstep: every lane takes exactly the tree's height in steps — a
// lane that reaches its leaf early parks there, because a finite
// feature never exceeds the leaf's +Inf threshold — so there is no
// per-step termination branch and the four dependent load chains
// overlap in the out-of-order window. Each row still accumulates trees
// in fit order and finishes on the same leaf value as the single-point
// walk, so out[i] is bit-identical to it for the finite feature
// vectors every caller feeds it (a NaN feature would unpark a finished
// lane; upstream validation rejects non-finite counters and ratios
// before they reach a model).
func (nt *nodeTable) batchSum(X [][]float64, out []float64, lo, hi int, init, scale float64) {
	nodes := nt.nodes
	for b := lo; b < hi; b += batchBlock {
		be := b + batchBlock
		if be > hi {
			be = hi
		}
		for i := b; i < be; i++ {
			out[i] = init
		}
		for k, root := range nt.roots {
			d := nt.depth[k]
			i := b
			for ; i+8 <= be; i += 8 {
				x0, x1, x2, x3 := X[i], X[i+1], X[i+2], X[i+3]
				x4, x5, x6, x7 := X[i+4], X[i+5], X[i+6], X[i+7]
				i0, i1, i2, i3 := root, root, root, root
				i4, i5, i6, i7 := root, root, root, root
				for s := int32(0); s < d; s++ {
					n0 := nodes[i0]
					b0 := int32(1)
					if x0[n0.Feature] <= n0.Thresh {
						b0 = 0
					}
					i0 = n0.Left + b0
					n1 := nodes[i1]
					b1 := int32(1)
					if x1[n1.Feature] <= n1.Thresh {
						b1 = 0
					}
					i1 = n1.Left + b1
					n2 := nodes[i2]
					b2 := int32(1)
					if x2[n2.Feature] <= n2.Thresh {
						b2 = 0
					}
					i2 = n2.Left + b2
					n3 := nodes[i3]
					b3 := int32(1)
					if x3[n3.Feature] <= n3.Thresh {
						b3 = 0
					}
					i3 = n3.Left + b3
					n4 := nodes[i4]
					b4 := int32(1)
					if x4[n4.Feature] <= n4.Thresh {
						b4 = 0
					}
					i4 = n4.Left + b4
					n5 := nodes[i5]
					b5 := int32(1)
					if x5[n5.Feature] <= n5.Thresh {
						b5 = 0
					}
					i5 = n5.Left + b5
					n6 := nodes[i6]
					b6 := int32(1)
					if x6[n6.Feature] <= n6.Thresh {
						b6 = 0
					}
					i6 = n6.Left + b6
					n7 := nodes[i7]
					b7 := int32(1)
					if x7[n7.Feature] <= n7.Thresh {
						b7 = 0
					}
					i7 = n7.Left + b7
				}
				out[i] += scale * nodes[i0].Pred
				out[i+1] += scale * nodes[i1].Pred
				out[i+2] += scale * nodes[i2].Pred
				out[i+3] += scale * nodes[i3].Pred
				out[i+4] += scale * nodes[i4].Pred
				out[i+5] += scale * nodes[i5].Pred
				out[i+6] += scale * nodes[i6].Pred
				out[i+7] += scale * nodes[i7].Pred
			}
			for ; i < be; i++ {
				out[i] += scale * nt.walk(root, d, X[i])
			}
		}
	}
}

// CompiledForest is a RandomForest lowered into one contiguous node
// table (mean of tree predictions).
type CompiledForest struct {
	tab nodeTable
	// Workers bounds PredictAll concurrency (0 = NumCPU); results are
	// identical for any value.
	Workers int
}

// NumTrees returns the ensemble size.
func (c *CompiledForest) NumTrees() int { return len(c.tab.roots) }

// Predict averages the tree walks; it allocates nothing.
func (c *CompiledForest) Predict(x []float64) float64 {
	return c.tab.accumulate(0, 1, x) / float64(len(c.tab.roots))
}

// PredictAll evaluates every row through the batch kernel, chunked
// across the worker pool.
func (c *CompiledForest) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	c.predictAllInto(X, out, c.Workers)
	return out
}

func (c *CompiledForest) predictAllInto(X [][]float64, out []float64, workers int) {
	n := float64(len(c.tab.roots))
	parallelChunks(len(X), workers, func(lo, hi int) {
		c.tab.batchSum(X, out, lo, hi, 0, 1)
		for i := lo; i < hi; i++ {
			out[i] /= n
		}
	})
}

// Compile returns the forest's flat inference engine.
func (f *RandomForest) Compile() (*CompiledForest, error) {
	if !f.fitted || f.compiled == nil {
		return nil, ErrNotFitted
	}
	return f.compiled, nil
}

// compileForest concatenates fitted trees into a CompiledForest.
func compileForest(trees []*DecisionTree, workers int) (*CompiledForest, error) {
	c := &CompiledForest{Workers: workers}
	for _, t := range trees {
		flat, err := t.Compile()
		if err != nil {
			return nil, err
		}
		c.tab.appendTree(flat)
	}
	return c, nil
}

// CompiledGBR is a GradientBoosted model lowered into one contiguous
// node table (base + learning-rate-scaled stage sums).
type CompiledGBR struct {
	tab  nodeTable
	base float64
	lr   float64
	// Workers bounds PredictAll concurrency (0 = NumCPU); results are
	// identical for any value.
	Workers int
}

// NumTrees returns the number of boosting stages.
func (c *CompiledGBR) NumTrees() int { return len(c.tab.roots) }

// Predict accumulates the stages in fit order; it allocates nothing.
func (c *CompiledGBR) Predict(x []float64) float64 {
	return c.tab.accumulate(c.base, c.lr, x)
}

// PredictAll evaluates every row through the batch kernel, chunked
// across the worker pool.
func (c *CompiledGBR) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	c.predictAllInto(X, out, c.Workers)
	return out
}

func (c *CompiledGBR) predictAllInto(X [][]float64, out []float64, workers int) {
	parallelChunks(len(X), workers, func(lo, hi int) {
		c.tab.batchSum(X, out, lo, hi, c.base, c.lr)
	})
}

// Compile returns the model's flat inference engine.
func (g *GradientBoosted) Compile() (*CompiledGBR, error) {
	if !g.fitted || g.compiled == nil {
		return nil, ErrNotFitted
	}
	return g.compiled, nil
}

// compileGBR concatenates fitted stage trees into a CompiledGBR.
func compileGBR(base, lr float64, trees []*DecisionTree, workers int) (*CompiledGBR, error) {
	c := &CompiledGBR{base: base, lr: lr, Workers: workers}
	for _, t := range trees {
		flat, err := t.Compile()
		if err != nil {
			return nil, err
		}
		c.tab.appendTree(flat)
	}
	return c, nil
}
