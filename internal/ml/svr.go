package ml

import (
	"math"
	"math/rand"
)

// SVRConfig configures the ε-insensitive support vector regressor with an
// RBF kernel (Table 3: kernel='rbf').
type SVRConfig struct {
	C       float64 // regularization
	Epsilon float64 // insensitive-tube half width
	Gamma   float64 // RBF width; 0 means 1/d
	// MaxPasses bounds the SMO sweeps without progress before stopping.
	MaxPasses int
	// MaxIter bounds total SMO iterations.
	MaxIter int
	Seed    int64
}

func (c SVRConfig) withDefaults() SVRConfig {
	if c.C <= 0 {
		c.C = 10
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.01
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 5
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 20000
	}
	return c
}

// SVR is an ε-SVR trained with a simplified SMO over the dual: each
// iteration picks one sample violating the KKT conditions and updates its
// coefficient β_i = α_i − α_i* by a clipped Newton step on the dual
// objective, then refreshes the bias from the margin samples.
type SVR struct {
	Config SVRConfig

	scaler *scaler
	X      [][]float64 // standardized support inputs (all training rows)
	beta   []float64   // α − α*
	b      float64
	gamma  float64
	fitted bool
}

// NewSVR builds an unfitted SVR.
func NewSVR(cfg SVRConfig) *SVR {
	return &SVR{Config: cfg.withDefaults()}
}

// Name implements Regressor.
func (s *SVR) Name() string { return "SVR" }

func (s *SVR) kernel(a, b []float64) float64 {
	var d2 float64
	for j := range a {
		dv := a[j] - b[j]
		d2 += dv * dv
	}
	return math.Exp(-s.gamma * d2)
}

// Fit implements Regressor.
func (s *SVR) Fit(X [][]float64, y []float64) error {
	if err := validate(X, y); err != nil {
		return err
	}
	n := len(X)
	d := len(X[0])
	s.scaler = fitScaler(X)
	s.X = s.scaler.transformAll(X)
	s.gamma = s.Config.Gamma
	if s.gamma <= 0 {
		s.gamma = 1 / float64(d)
	}
	s.beta = make([]float64, n)
	s.b = 0

	// Precompute the kernel matrix; training sets here are ≤ a few
	// thousand rows, so O(n²) memory is acceptable.
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := s.kernel(s.X[i], s.X[j])
			K[i][j] = v
			K[j][i] = v
		}
	}
	// f[i] = current prediction without bias.
	f := make([]float64, n)

	rng := rand.New(rand.NewSource(s.Config.Seed))
	passes := 0
	iter := 0
	for passes < s.Config.MaxPasses && iter < s.Config.MaxIter {
		changed := 0
		order := rng.Perm(n)
		for _, i := range order {
			iter++
			if iter >= s.Config.MaxIter {
				break
			}
			err := f[i] + s.b - y[i]
			// KKT: |err| ≤ ε within the tube (β free to be 0);
			// outside the tube β should push against the bound.
			var grad float64
			switch {
			case err > s.Config.Epsilon:
				grad = err - s.Config.Epsilon
			case err < -s.Config.Epsilon:
				grad = err + s.Config.Epsilon
			default:
				// Inside the tube: shrink β toward 0.
				if s.beta[i] == 0 {
					continue
				}
				grad = 0
			}
			// Newton step on coordinate i: Δβ = −grad / K_ii, plus decay
			// toward zero inside the tube.
			var delta float64
			if grad != 0 {
				delta = -grad / K[i][i]
			} else {
				delta = -s.beta[i] * 0.5
			}
			newBeta := clamp(s.beta[i]+delta, -s.Config.C, s.Config.C)
			d := newBeta - s.beta[i]
			if math.Abs(d) < 1e-9 {
				continue
			}
			s.beta[i] = newBeta
			for j := 0; j < n; j++ {
				f[j] += d * K[i][j]
			}
			changed++
		}
		// Refresh bias: average residual over free samples.
		var bs float64
		var bn int
		for i := 0; i < n; i++ {
			if s.beta[i] > -s.Config.C && s.beta[i] < s.Config.C && s.beta[i] != 0 {
				bs += y[i] - f[i]
				bn++
			}
		}
		if bn > 0 {
			s.b = bs / float64(bn)
		} else {
			var all float64
			for i := 0; i < n; i++ {
				all += y[i] - f[i]
			}
			s.b = all / float64(n)
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	s.fitted = true
	return nil
}

// Predict implements Regressor.
func (s *SVR) Predict(x []float64) float64 {
	if !s.fitted {
		return 0
	}
	q := s.scaler.transform(x)
	out := s.b
	for i, beta := range s.beta {
		if beta == 0 {
			continue
		}
		out += beta * s.kernel(s.X[i], q)
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
