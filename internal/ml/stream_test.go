package ml

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"merchandiser/internal/merr"
)

// synthGroups builds deterministic grouped training data: nGroups
// groups of rowsPer rows over 3 features with a nonlinear target.
func synthGroups(nGroups, rowsPer int, seed int64) (X [][][]float64, y [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	for g := 0; g < nGroups; g++ {
		var gx [][]float64
		var gy []float64
		for i := 0; i < rowsPer; i++ {
			row := []float64{rng.Float64(), rng.Float64() * 2, rng.NormFloat64()}
			gx = append(gx, row)
			gy = append(gy, row[0]*row[1]+0.3*row[2]+0.05*rng.NormFloat64())
		}
		X = append(X, gx)
		y = append(y, gy)
	}
	return X, y
}

func flatten(X [][][]float64, y [][]float64) ([][]float64, []float64) {
	var fx [][]float64
	var fy []float64
	for g := range X {
		fx = append(fx, X[g]...)
		fy = append(fy, y[g]...)
	}
	return fx, fy
}

func pushAll(t *testing.T, f *Feed, X [][][]float64, y [][]float64) {
	t.Helper()
	for g := range X {
		if err := f.Push(X[g], y[g]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPaceScheduleProperties(t *testing.T) {
	const stages, groups = 150, 281
	prev := 0
	for s := 0; s < stages; s++ {
		g := PaceSchedule(s, stages, groups, 1.0/3)
		if g < 1 || g > groups {
			t.Fatalf("stage %d: schedule %d out of [1, %d]", s, g, groups)
		}
		if g < prev {
			t.Fatalf("stage %d: schedule %d < previous %d (must be monotone)", s, g, prev)
		}
		prev = g
	}
	if prev != groups {
		t.Fatalf("final stage sees %d groups, want all %d", prev, groups)
	}
	// The ramp finishes at ceil(ramp*stages): every later stage is full.
	if g := PaceSchedule(49, stages, groups, 1.0/3); g != groups {
		t.Fatalf("post-ramp stage sees %d, want %d", g, groups)
	}
	// ramp <= 0 disables pacing.
	if g := PaceSchedule(0, stages, groups, -1); g != groups {
		t.Fatalf("unpaced stage 0 sees %d, want %d", g, groups)
	}
}

// TestFeedRowsExactPrefix: Rows returns exactly the requested group
// prefix, in push order — the fitter can never observe samples out of
// region order or beyond the prefix it asked for.
func TestFeedRowsExactPrefix(t *testing.T) {
	X, y := synthGroups(6, 4, 11)
	feed := NewFeed()
	pushAll(t, feed, X, y)
	feed.Close(nil)
	for k := 1; k <= 6; k++ {
		gx, gy, got, err := feed.Rows(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("Rows(%d) covered %d groups", k, got)
		}
		wantX, wantY := flatten(X[:k], y[:k])
		if !reflect.DeepEqual(gx, wantX) || !reflect.DeepEqual(gy, wantY) {
			t.Fatalf("Rows(%d) is not the exact prefix in push order", k)
		}
	}
}

// TestFitPacedUnpacedMatchesFit: with pacing disabled (Ramp < 0) and a
// fully delivered feed, FitPaced is bit-identical to Fit on the
// concatenated rows — the differential anchor for the streaming path.
func TestFitPacedUnpacedMatchesFit(t *testing.T) {
	X, y := synthGroups(8, 6, 21)
	fx, fy := flatten(X, y)
	cfg := GBRConfig{NumStages: 40, Seed: 5}

	ref := NewGradientBoosted(cfg)
	if err := ref.Fit(fx, fy); err != nil {
		t.Fatal(err)
	}
	feed := NewFeed()
	pushAll(t, feed, X, y)
	feed.Close(nil)
	paced := NewGradientBoosted(cfg)
	if err := paced.FitPaced(context.Background(), feed, PaceConfig{Groups: 8, Ramp: -1}); err != nil {
		t.Fatal(err)
	}
	refDump, err := ref.Dump()
	if err != nil {
		t.Fatal(err)
	}
	pacedDump, err := paced.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refDump, pacedDump) {
		t.Fatal("unpaced FitPaced differs from Fit on identical rows")
	}
}

// TestFitPacedDeterministicAcrossTimingAndWorkers: the paced fit is a
// pure function of (data, config) — trickling groups in slowly, pushing
// them all upfront, and changing Workers all yield the same model.
func TestFitPacedDeterministicAcrossTimingAndWorkers(t *testing.T) {
	X, y := synthGroups(10, 6, 31)
	cfgFor := func(workers int) GBRConfig {
		return GBRConfig{NumStages: 30, Seed: 9, Workers: workers}
	}
	pace := PaceConfig{Groups: 10, MinRows: 1}

	fitInstant := func(workers int) *GBRDump {
		feed := NewFeed()
		pushAll(t, feed, X, y)
		feed.Close(nil)
		g := NewGradientBoosted(cfgFor(workers))
		if err := g.FitPaced(context.Background(), feed, pace); err != nil {
			t.Fatal(err)
		}
		d, err := g.Dump()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	fitTrickle := func() *GBRDump {
		feed := NewFeed()
		go func() {
			for g := range X {
				time.Sleep(2 * time.Millisecond)
				if err := feed.Push(X[g], y[g]); err != nil {
					feed.Close(err)
					return
				}
			}
			feed.Close(nil)
		}()
		g := NewGradientBoosted(cfgFor(2))
		if err := g.FitPaced(context.Background(), feed, pace); err != nil {
			t.Fatal(err)
		}
		d, err := g.Dump()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	ref := fitInstant(1)
	if !reflect.DeepEqual(ref, fitInstant(4)) {
		t.Fatal("paced fit differs between Workers=1 and Workers=4")
	}
	if !reflect.DeepEqual(ref, fitTrickle()) {
		t.Fatal("paced fit depends on group arrival timing")
	}
}

// TestFitPacedNeverOutrunsSchedule: at every boosting stage the feed
// must already hold at least the stage's scheduled prefix — the fitter
// never runs ahead of the pace car.
func TestFitPacedNeverOutrunsSchedule(t *testing.T) {
	X, y := synthGroups(12, 5, 41)
	feed := NewFeed()
	go func() {
		for g := range X {
			time.Sleep(time.Millisecond)
			if err := feed.Push(X[g], y[g]); err != nil {
				feed.Close(err)
				return
			}
		}
		feed.Close(nil)
	}()
	const stages = 24
	var groupsAtStage []int
	pc := PaceConfig{
		Groups:  12,
		MinRows: 1,
		Gate: func(ctx context.Context) (func(), error) {
			// The gate runs once per stage, after the stage's prefix wait.
			groupsAtStage = append(groupsAtStage, feed.Groups())
			return func() {}, nil
		},
	}
	g := NewGradientBoosted(GBRConfig{NumStages: stages, Seed: 3})
	if err := g.FitPaced(context.Background(), feed, pc); err != nil {
		t.Fatal(err)
	}
	if len(groupsAtStage) != stages {
		t.Fatalf("gate ran %d times, want one per stage (%d)", len(groupsAtStage), stages)
	}
	for s, got := range groupsAtStage {
		if want := PaceSchedule(s, stages, 12, 1.0/3); got < want {
			t.Fatalf("stage %d started with %d groups available, schedule requires %d", s, got, want)
		}
	}
}

// TestFitPacedCancellationAndProducerError: a canceled context unblocks
// a fitter waiting on the feed, and a producer error pushed through
// Close surfaces from FitPaced.
func TestFitPacedCancellationAndProducerError(t *testing.T) {
	X, y := synthGroups(2, 6, 51)

	ctx, cancel := context.WithCancel(context.Background())
	feed := NewFeed()
	pushAll(t, feed, X, y) // far fewer groups than the schedule wants
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	g := NewGradientBoosted(GBRConfig{NumStages: 20, Seed: 1})
	err := g.FitPaced(ctx, feed, PaceConfig{Groups: 40, MinRows: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FitPaced under cancellation = %v, want context.Canceled", err)
	}

	boom := errors.New("simulated producer failure")
	feed2 := NewFeed()
	pushAll(t, feed2, X, y)
	feed2.Close(boom)
	g2 := NewGradientBoosted(GBRConfig{NumStages: 20, Seed: 1})
	if err := g2.FitPaced(context.Background(), feed2, PaceConfig{Groups: 40, MinRows: 1}); !errors.Is(err, boom) {
		t.Fatalf("FitPaced with failed producer = %v, want the producer's error", err)
	}

	// A clean-but-short feed is an error, not a silent small-model fit.
	feed3 := NewFeed()
	pushAll(t, feed3, X, y)
	feed3.Close(nil)
	g3 := NewGradientBoosted(GBRConfig{NumStages: 20, Seed: 1})
	err = g3.FitPaced(context.Background(), feed3, PaceConfig{Groups: 40, MinRows: 1})
	if err == nil || errors.Is(err, merr.ErrUntrained) {
		t.Fatalf("short feed: got %v, want a feed-closed-early error", err)
	}
}
