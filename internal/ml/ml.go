// Package ml implements the statistical models of the paper's Table 3 —
// Decision Tree Regressor, Support Vector Regressor (RBF), K-Neighbors
// Regressor, Random Forest Regressor, Gradient Boosted Regressor and an
// MLP Regressor — from scratch on the standard library, together with the
// impurity-based ("Gini") feature importance and the recursive feature
// elimination the paper uses to select the 8 workload-characteristic
// events (Section 5.1, Figure 7).
//
// The paper trains these with scikit-learn; the implementations here
// follow the same algorithms (CART with variance reduction, bagging,
// gradient boosting on squared loss, ε-SVR via SMO, standardized KNN and a
// ReLU MLP with Adam) so the model-family ranking of Table 3 emerges from
// the same mechanisms.
package ml

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"merchandiser/internal/merr"
	"merchandiser/internal/stats"
)

// Regressor is a trainable single-output regression model.
type Regressor interface {
	// Fit trains on rows X (n×d) with targets y (n).
	Fit(X [][]float64, y []float64) error
	// Predict returns the model output for one feature vector.
	Predict(x []float64) float64
	// Name returns the Table 3 abbreviation (DTR, SVR, ...).
	Name() string
}

// Importancer is implemented by models that expose per-feature
// impurity-decrease importances (the Gini importance of Section 5.1).
type Importancer interface {
	// Importances returns one non-negative weight per feature, summing to
	// 1 (or all zeros for a constant model).
	Importances() []float64
}

// BatchRegressor is implemented by models with a batch predictor that is
// cheaper than per-point Predict calls (one pass over the trees, chunked
// across goroutines). PredictAll(X)[i] equals Predict(X[i]) exactly.
type BatchRegressor interface {
	Regressor
	// PredictAll returns the model output for every row of X.
	PredictAll(X [][]float64) []float64
}

// ErrNotFitted is returned by Predict-time misuse and by helpers that
// require a trained model. It is classified under merr.ErrUntrained so
// callers can match either sentinel.
var ErrNotFitted = merr.Wrap(merr.ErrUntrained, "", errors.New("ml: model not fitted"))

// ContextFitter is implemented by models whose training can be canceled
// mid-fit (between boosting stages or tree fits). FitContext with a
// context.Background() is exactly Fit.
type ContextFitter interface {
	Regressor
	FitContext(ctx context.Context, X [][]float64, y []float64) error
}

// Fit trains m on (X, y) honoring ctx when the model supports
// cancellation; other models are fitted atomically after an upfront
// context check. The trained model is identical to m.Fit(X, y) whenever
// ctx stays live.
func Fit(ctx context.Context, m Regressor, X [][]float64, y []float64) error {
	if cf, ok := m.(ContextFitter); ok {
		return cf.FitContext(ctx, X, y)
	}
	if err := merr.FromContext(ctx, "ml: fit canceled"); err != nil {
		return err
	}
	return m.Fit(X, y)
}

// parallelChunks splits [0, n) into contiguous chunks and runs fn on up to
// `workers` goroutines (0 = runtime.NumCPU()). Each index is processed
// exactly once; chunk boundaries never overlap, so fn may write result
// slots without synchronization and the output is deterministic.
func parallelChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// validate checks the common Fit preconditions.
func validate(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return errors.New("ml: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d rows but %d targets", len(X), len(y))
	}
	d := len(X[0])
	if d == 0 {
		return errors.New("ml: zero-dimensional features")
	}
	for i, r := range X {
		if len(r) != d {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(r), d)
		}
	}
	return nil
}

// PredictBatch applies the model to every row, using the model's batch
// predictor when it has one.
func PredictBatch(m Regressor, X [][]float64) []float64 {
	if b, ok := m.(BatchRegressor); ok {
		return b.PredictAll(X)
	}
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// R2Score fits nothing: it evaluates m on (X, y) and returns R².
func R2Score(m Regressor, X [][]float64, y []float64) (float64, error) {
	return stats.R2(y, PredictBatch(m, X))
}

// TrainTestSplit shuffles deterministically (by seed) and splits the data
// with trainFrac of the rows in the training part — the paper's 70/30
// split.
func TrainTestSplit(X [][]float64, y []float64, trainFrac float64, seed int64) (Xtr [][]float64, ytr []float64, Xte [][]float64, yte []float64, err error) {
	if err := validate(X, y); err != nil {
		return nil, nil, nil, nil, err
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("ml: train fraction %v out of (0,1)", trainFrac)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(len(X))
	nTrain := int(float64(len(X)) * trainFrac)
	if nTrain == 0 {
		nTrain = 1
	}
	if nTrain == len(X) {
		nTrain = len(X) - 1
	}
	for i, j := range idx {
		if i < nTrain {
			Xtr = append(Xtr, X[j])
			ytr = append(ytr, y[j])
		} else {
			Xte = append(Xte, X[j])
			yte = append(yte, y[j])
		}
	}
	return Xtr, ytr, Xte, yte, nil
}

// scaler standardizes features to zero mean, unit variance; constant
// features are left centered.
type scaler struct {
	mean, std []float64
}

func fitScaler(X [][]float64) *scaler {
	d := len(X[0])
	s := &scaler{mean: make([]float64, d), std: make([]float64, d)}
	n := float64(len(X))
	for _, r := range X {
		for j, v := range r {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, r := range X {
		for j, v := range r {
			dv := v - s.mean[j]
			s.std[j] += dv * dv
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
	return s
}

// transformInto standardizes x appending onto dst and returns the
// extended slice — the allocation-free form for hot paths that reuse a
// scratch buffer (pass dst[:0] to overwrite it).
func (s *scaler) transformInto(dst, x []float64) []float64 {
	for j, v := range x {
		dst = append(dst, (v-s.mean[j])/s.std[j])
	}
	return dst
}

func (s *scaler) transform(x []float64) []float64 {
	return s.transformInto(make([]float64, 0, len(x)), x)
}

// transformAll standardizes a whole matrix into one backing array: a
// single n·d allocation instead of one per row.
func (s *scaler) transformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	flat := make([]float64, 0, len(X)*len(s.mean))
	for i, r := range X {
		start := len(flat)
		flat = s.transformInto(flat, r)
		out[i] = flat[start:len(flat):len(flat)]
	}
	return out
}
