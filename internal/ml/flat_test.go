package ml

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"merchandiser/internal/merr"
)

// cloneFlat deep-copies a flat model so tests can corrupt the copy
// without touching the live model's kernel table (DumpFlat aliases it).
func cloneFlat(f *FlatModel) *FlatModel {
	c := &FlatModel{
		Nodes: append([]NodeRec(nil), f.Nodes...),
		Roots: append([]int32(nil), f.Roots...),
		Depth: append([]int32(nil), f.Depth...),
		Meta:  f.Meta,
	}
	return c
}

func fitFlatGBR(t *testing.T) (*GradientBoosted, [][]float64) {
	t.Helper()
	X, y := serializeTrainingSet(300, 5, 11)
	g := NewGradientBoosted(GBRConfig{NumStages: 12, MaxDepth: 4, Seed: 3})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	return g, X
}

func TestFlatRoundTripGBR(t *testing.T) {
	g, X := fitFlatGBR(t)
	fm, err := DumpFlat(g)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFlat(cloneFlat(fm), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqualPredictions(t, g, loaded, X)

	// The flat-restored model (which has no pointer trees) must dump the
	// exact JSON the original dumps — that is what makes binary→json
	// conversion byte-identical.
	want, err := DumpModel(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DumpModel(loaded)
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatal("flat-restored GBR dumps different JSON than the original")
	}

	// And flattening the flat-restored model reproduces the flat form.
	fm2, err := DumpFlat(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(fm2.Nodes) != len(fm.Nodes) || len(fm2.Roots) != len(fm.Roots) {
		t.Fatal("re-flattened model changed shape")
	}
	for i := range fm.Nodes {
		if fm.Nodes[i] != fm2.Nodes[i] {
			t.Fatalf("node %d changed across flat round trip", i)
		}
	}
}

func TestFlatRoundTripForest(t *testing.T) {
	X, y := serializeTrainingSet(250, 4, 21)
	f := NewRandomForest(ForestConfig{NumTrees: 7, MaxDepth: 6, Seed: 5})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	fm, err := DumpFlat(f)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFlat(cloneFlat(fm), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqualPredictions(t, f, loaded, X)
	want, _ := DumpModel(f)
	got, _ := DumpModel(loaded)
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatal("flat-restored forest dumps different JSON than the original")
	}
}

func TestFlatRoundTripTree(t *testing.T) {
	X, y := serializeTrainingSet(200, 4, 31)
	tr := NewDecisionTree(TreeConfig{MaxDepth: 6, Seed: 9})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	fm, err := DumpFlat(tr)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFlat(cloneFlat(fm), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqualPredictions(t, tr, loaded, X)
}

func TestDumpFlatUnfitted(t *testing.T) {
	if _, err := DumpFlat(NewGradientBoosted(GBRConfig{})); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted GBR: got %v, want ErrNotFitted", err)
	}
	if _, err := DumpFlat(NewKNN(KNNConfig{})); err == nil {
		t.Fatal("non-flat model accepted")
	}
}

// TestNodeRecCodecPortableMatchesFast proves the unsafe little-endian
// bulk path and the portable per-field path produce identical bytes and
// records — the cross-endianness guarantee.
func TestNodeRecCodecPortableMatchesFast(t *testing.T) {
	g, _ := fitFlatGBR(t)
	fm, err := DumpFlat(g)
	if err != nil {
		t.Fatal(err)
	}
	recs := fm.Nodes
	fast := AppendNodeRecs(nil, recs)
	if len(fast) != len(recs)*NodeRecBytes {
		t.Fatalf("encoded %d bytes for %d records", len(fast), len(recs))
	}
	portable := make([]byte, len(recs)*NodeRecBytes)
	for i := range recs {
		putNodeRec(portable[i*NodeRecBytes:], &recs[i])
	}
	if string(fast) != string(portable) {
		t.Fatal("bulk and portable encodings disagree")
	}
	back, err := NodeRecsFromBytes(fast)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		var want NodeRec
		getNodeRec(portable[i*NodeRecBytes:], &want)
		if back[i] != want || back[i] != recs[i] {
			t.Fatalf("record %d corrupted through the codec", i)
		}
	}
	if _, err := NodeRecsFromBytes(fast[:len(fast)-1]); !errors.Is(err, merr.ErrBadArtifact) {
		t.Fatalf("ragged payload: got %v, want ErrBadArtifact", err)
	}
}

func TestLoadFlatRejectsCorruptTables(t *testing.T) {
	g, _ := fitFlatGBR(t)
	good, err := DumpFlat(g)
	if err != nil {
		t.Fatal(err)
	}
	// Locate a leaf and an internal node to corrupt.
	leaf, internal := -1, -1
	for i, nd := range good.Nodes {
		if math.IsInf(nd.Thresh, 1) {
			if leaf < 0 {
				leaf = i
			}
		} else if internal < 0 {
			internal = i
		}
	}
	if leaf < 0 || internal < 0 {
		t.Fatal("test table has no leaf or no internal node")
	}

	cases := []struct {
		name   string
		mutate func(*FlatModel)
	}{
		{"no roots", func(f *FlatModel) { f.Roots = nil; f.Depth = nil }},
		{"ragged depth", func(f *FlatModel) { f.Depth = f.Depth[:len(f.Depth)-1] }},
		{"first root nonzero", func(f *FlatModel) { f.Roots[0] = 1 }},
		{"inverted range", func(f *FlatModel) { f.Roots[1] = f.Roots[0] }},
		{"root beyond table", func(f *FlatModel) { f.Roots[len(f.Roots)-1] = int32(len(f.Nodes)) }},
		{"declared height wrong", func(f *FlatModel) { f.Depth[0]++ }},
		{"height over limit", func(f *FlatModel) { f.Depth[0] = maxTreeDepth + 1 }},
		{"leaf not self-looped", func(f *FlatModel) { f.Nodes[leaf].Left++ }},
		{"leaf with feature", func(f *FlatModel) { f.Nodes[leaf].Feature = 1 }},
		{"leaf nan prediction", func(f *FlatModel) { f.Nodes[leaf].Pred = math.NaN() }},
		{"internal nan threshold", func(f *FlatModel) { f.Nodes[internal].Thresh = math.NaN() }},
		{"internal negative feature", func(f *FlatModel) { f.Nodes[internal].Feature = -1 }},
		{"internal huge feature", func(f *FlatModel) { f.Nodes[internal].Feature = maxFeatureIndex + 1 }},
		{"internal stray prediction", func(f *FlatModel) { f.Nodes[internal].Pred = 1 }},
		{"broken bfs child", func(f *FlatModel) { f.Nodes[internal].Left++ }},
		{"tree config count", func(f *FlatModel) { f.Meta.TreeConfigs = f.Meta.TreeConfigs[:1] }},
		{"unknown kind", func(f *FlatModel) { f.Meta.Kind = "XGB" }},
		{"wrong params", func(f *FlatModel) { f.Meta.GBR = nil; f.Meta.Forest = &ForestParams{} }},
		{"bad learning rate", func(f *FlatModel) { f.Meta.GBR.LearningRate = 0 }},
		{"nan base", func(f *FlatModel) { f.Meta.Base = math.NaN() }},
		{"negative importance", func(f *FlatModel) { f.Meta.Importances[0] = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := cloneFlat(good)
			// Deep-copy meta sub-slices the mutations touch.
			bad.Meta.TreeConfigs = append([]TreeConfig(nil), good.Meta.TreeConfigs...)
			bad.Meta.Importances = append([]float64(nil), good.Meta.Importances...)
			if good.Meta.GBR != nil {
				p := *good.Meta.GBR
				bad.Meta.GBR = &p
			}
			tc.mutate(bad)
			if _, err := LoadFlat(bad, LoadOptions{}); !errors.Is(err, merr.ErrBadArtifact) {
				t.Fatalf("corrupt table accepted: %v", err)
			}
		})
	}

	// The uncorrupted clone must still load — proving the cases above
	// fail because of the mutation, not the harness.
	if _, err := LoadFlat(cloneFlat(good), LoadOptions{}); err != nil {
		t.Fatalf("pristine clone rejected: %v", err)
	}
}

// TestFlatLoadedModelRefits proves Fit on a flat-restored model fully
// resets it: the retained restore metadata is dropped so the next dump
// reflects the new fit, not the stale restore.
func TestFlatLoadedModelRefits(t *testing.T) {
	g, X := fitFlatGBR(t)
	fm, err := DumpFlat(g)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFlat(cloneFlat(fm), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lg := loaded.(*GradientBoosted)
	X2, y2 := serializeTrainingSet(150, 5, 99)
	if err := lg.Fit(X2, y2); err != nil {
		t.Fatal(err)
	}
	if lg.flatMeta != nil {
		t.Fatal("refit did not drop the retained flat metadata")
	}
	if _, err := DumpModel(lg); err != nil {
		t.Fatal(err)
	}
	_ = X
}
