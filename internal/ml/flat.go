package ml

// This file is the flat serialization boundary of the compiled
// inference engine: the kernel's interleaved NodeRec table IS the wire
// format. DumpFlat exposes a fitted ensemble's node table, tree index
// and metadata without copying the hot arrays; LoadFlat ingests them
// straight back into a servable model — no JSON decode of node arrays,
// no pointer tree, no re-compile. The binary artifact sections of
// internal/store persist exactly these slices (24-byte little-endian
// records), so restoring a model of any size is one contiguous read
// plus an O(n) structural validation pass over flat memory.
//
// Validation is strict and bounded: a hostile table is rejected by
// replaying the exact breadth-first allocation discipline appendTree
// uses (each internal node's left child must be the next unallocated
// slot, leaves must self-loop on a +Inf threshold), re-deriving every
// tree's height, and bounding depth, feature indices and float
// finiteness — so the branch-free walk kernels can never index out of
// range, loop forever, or compare NaNs. Every violation classifies as
// merr.ErrBadArtifact.
//
// Models loaded through LoadFlat have no pointer trees (trees == nil);
// their Dump path decompiles the BFS table back to the canonical
// preorder node list (decompileRange), which reproduces the original
// JSON dump byte-for-byte — that is what keeps the json and binary
// artifact formats freely convertible in both directions.

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// NodeRecBytes is the wire size of one NodeRec: two float64s and two
// int32s, no padding.
const NodeRecBytes = 24

// maxTreeDepth bounds the per-tree height a flat table may declare.
// Real trees are depth <= ~10 (TreeConfig.MaxDepth); the bound keeps a
// hostile table from making every walk take millions of steps and
// keeps the decompiler's recursion shallow.
const maxTreeDepth = 512

// Compile-time guards: the serialization below assumes this exact
// record layout. If NodeRec ever grows or reorders, these fail to
// compile and the store's SlotVersion must be bumped.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(NodeRec{})-NodeRecBytes]
	_ = [1]struct{}{}[unsafe.Offsetof(NodeRec{}.Thresh)-0]
	_ = [1]struct{}{}[unsafe.Offsetof(NodeRec{}.Pred)-8]
	_ = [1]struct{}{}[unsafe.Offsetof(NodeRec{}.Feature)-16]
	_ = [1]struct{}{}[unsafe.Offsetof(NodeRec{}.Left)-20]
)

// hostLE reports whether the host stores multi-byte values
// little-endian — the wire order. When true, NodeRec slices can be
// copied to and from their wire form with a single memmove; otherwise
// the portable per-field codec runs.
var hostLE = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// AppendNodeRecs appends the little-endian wire form of recs to dst.
// On little-endian hosts this is one bulk copy of the records' memory.
func AppendNodeRecs(dst []byte, recs []NodeRec) []byte {
	if len(recs) == 0 {
		return dst
	}
	if hostLE {
		src := unsafe.Slice((*byte)(unsafe.Pointer(&recs[0])), len(recs)*NodeRecBytes)
		return append(dst, src...)
	}
	var buf [NodeRecBytes]byte
	for i := range recs {
		putNodeRec(buf[:], &recs[i])
		dst = append(dst, buf[:]...)
	}
	return dst
}

// NodeRecsFromBytes decodes a wire-form record array into a fresh
// NodeRec slice. On little-endian hosts the payload lands in the
// kernel table with a single bulk copy. The only accepted length is an
// exact multiple of NodeRecBytes, and the allocation is proportional
// to len(data) — never to anything a corrupted header claims.
func NodeRecsFromBytes(data []byte) ([]NodeRec, error) {
	if len(data)%NodeRecBytes != 0 {
		return nil, badModel("node record payload of %d bytes is not a multiple of %d", len(data), NodeRecBytes)
	}
	n := len(data) / NodeRecBytes
	recs := make([]NodeRec, n)
	if n == 0 {
		return recs, nil
	}
	if hostLE {
		dst := unsafe.Slice((*byte)(unsafe.Pointer(&recs[0])), len(data))
		copy(dst, data)
		return recs, nil
	}
	for i := range recs {
		getNodeRec(data[i*NodeRecBytes:], &recs[i])
	}
	return recs, nil
}

func putNodeRec(b []byte, r *NodeRec) {
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(r.Thresh))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(r.Pred))
	binary.LittleEndian.PutUint32(b[16:], uint32(r.Feature))
	binary.LittleEndian.PutUint32(b[20:], uint32(r.Left))
}

func getNodeRec(b []byte, r *NodeRec) {
	r.Thresh = math.Float64frombits(binary.LittleEndian.Uint64(b[0:]))
	r.Pred = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	r.Feature = int32(binary.LittleEndian.Uint32(b[16:]))
	r.Left = int32(binary.LittleEndian.Uint32(b[20:]))
}

// FlatMeta is the part of a model dump that is not the kernel table:
// the model kind, its hyperparameters, and the importance vectors and
// per-tree configs the JSON dump form carries. It is O(trees·features)
// — negligible next to the node records — and travels as a small
// canonical-JSON trailer of the binary section.
type FlatMeta struct {
	// Kind is the model's Name(): "GBR", "RFR" or "DTR".
	Kind string `json:"kind"`
	// Base is the GBR base prediction (0 for other kinds).
	Base float64 `json:"base,omitempty"`
	// GBR / Forest carry the ensemble hyperparameters; exactly the one
	// matching Kind is set (neither for DTR).
	GBR    *GBRParams    `json:"gbr,omitempty"`
	Forest *ForestParams `json:"forest,omitempty"`
	// Importances is the ensemble-level importance vector.
	Importances []float64 `json:"importances,omitempty"`
	// TreeConfigs and TreeImportances hold each tree's config and
	// importance vector, in table order — what TreeDump carries in the
	// JSON form.
	TreeConfigs     []TreeConfig `json:"tree_configs"`
	TreeImportances [][]float64  `json:"tree_importances,omitempty"`
}

// FlatModel is a compiled ensemble in serialization form: the kernel's
// node table, the per-tree roots and heights, and the metadata needed
// to reproduce the JSON dump exactly. DumpFlat shares the live model's
// slices (callers must not mutate them); LoadFlat takes ownership of
// the slices it is given.
type FlatModel struct {
	Nodes []NodeRec
	Roots []int32
	Depth []int32
	Meta  FlatMeta
}

// NumTrees returns the tree count of the flat table.
func (f *FlatModel) NumTrees() int { return len(f.Roots) }

// DumpFlat exposes a fitted model's compiled table for serialization.
// The returned slices alias the model's own kernel table — no node is
// copied — so the caller must treat them as read-only.
func DumpFlat(m Regressor) (*FlatModel, error) {
	switch v := m.(type) {
	case *GradientBoosted:
		if !v.fitted || v.compiled == nil {
			return nil, ErrNotFitted
		}
		meta, err := v.flatMetaNow()
		if err != nil {
			return nil, err
		}
		tab := &v.compiled.tab
		return &FlatModel{Nodes: tab.nodes, Roots: tab.roots, Depth: tab.depth, Meta: *meta}, nil
	case *RandomForest:
		if !v.fitted || v.compiled == nil {
			return nil, ErrNotFitted
		}
		meta, err := v.flatMetaNow()
		if err != nil {
			return nil, err
		}
		tab := &v.compiled.tab
		return &FlatModel{Nodes: tab.nodes, Roots: tab.roots, Depth: tab.depth, Meta: *meta}, nil
	case *DecisionTree:
		if !v.fitted || v.flat == nil {
			return nil, ErrNotFitted
		}
		var nt nodeTable
		nt.appendTree(v.flat)
		meta := FlatMeta{
			Kind:            v.Name(),
			TreeConfigs:     []TreeConfig{v.Config},
			TreeImportances: [][]float64{append([]float64(nil), v.importances...)},
		}
		return &FlatModel{Nodes: nt.nodes, Roots: nt.roots, Depth: nt.depth, Meta: meta}, nil
	default:
		return nil, badModel("model %s has no flat serialization", m.Name())
	}
}

// flatMetaNow assembles the GBR's FlatMeta: from the retained restore
// metadata when the model was loaded flat, otherwise from the fitted
// trees.
func (g *GradientBoosted) flatMetaNow() (*FlatMeta, error) {
	if g.flatMeta != nil {
		return g.flatMeta, nil
	}
	m := &FlatMeta{
		Kind: g.Name(),
		Base: g.base,
		GBR: &GBRParams{
			NumStages:      g.Config.NumStages,
			LearningRate:   g.Config.LearningRate,
			MaxDepth:       g.Config.MaxDepth,
			MinSamplesLeaf: g.Config.MinSamplesLeaf,
			Subsample:      g.Config.Subsample,
			Seed:           g.Config.Seed,
		},
		Importances: append([]float64(nil), g.importances...),
	}
	for _, t := range g.trees {
		m.TreeConfigs = append(m.TreeConfigs, t.Config)
		m.TreeImportances = append(m.TreeImportances, append([]float64(nil), t.importances...))
	}
	return m, nil
}

// flatMetaNow assembles the forest's FlatMeta (see the GBR variant).
func (f *RandomForest) flatMetaNow() (*FlatMeta, error) {
	if f.flatMeta != nil {
		return f.flatMeta, nil
	}
	m := &FlatMeta{
		Kind: f.Name(),
		Forest: &ForestParams{
			NumTrees:       f.Config.NumTrees,
			MaxDepth:       f.Config.MaxDepth,
			MinSamplesLeaf: f.Config.MinSamplesLeaf,
			MaxFeatures:    f.Config.MaxFeatures,
			Seed:           f.Config.Seed,
		},
		Importances: append([]float64(nil), f.importances...),
	}
	for _, t := range f.trees {
		m.TreeConfigs = append(m.TreeConfigs, t.Config)
		m.TreeImportances = append(m.TreeImportances, append([]float64(nil), t.importances...))
	}
	return m, nil
}

// LoadFlat reconstructs a servable model from its flat form without
// building pointer trees and — for ensembles — without re-compiling:
// the given node table becomes the model's kernel table as-is, after a
// strict structural validation. The model predicts bit-for-bit what
// the dumped model did, and its Dump output reproduces the JSON form
// the model would have dumped before flattening.
func LoadFlat(f *FlatModel, opt LoadOptions) (Regressor, error) {
	if f == nil {
		return nil, badModel("nil flat model")
	}
	if err := validateFlatMeta(&f.Meta, len(f.Roots)); err != nil {
		return nil, err
	}
	if err := validateNodeTable(f.Nodes, f.Roots, f.Depth); err != nil {
		return nil, err
	}
	meta := f.Meta
	switch meta.Kind {
	case "GBR":
		p := meta.GBR
		g := NewGradientBoosted(GBRConfig{
			NumStages:      p.NumStages,
			LearningRate:   p.LearningRate,
			MaxDepth:       p.MaxDepth,
			MinSamplesLeaf: p.MinSamplesLeaf,
			Subsample:      p.Subsample,
			Seed:           p.Seed,
			Workers:        opt.Workers,
			Obs:            opt.Obs,
		})
		g.base = meta.Base
		g.importances = append([]float64(nil), meta.Importances...)
		g.flatMeta = &meta
		g.fitted = true
		g.compiled = &CompiledGBR{
			tab:     nodeTable{nodes: f.Nodes, roots: f.Roots, depth: f.Depth},
			base:    meta.Base,
			lr:      p.LearningRate,
			Workers: opt.Workers,
		}
		return g, nil
	case "RFR":
		p := meta.Forest
		rf := NewRandomForest(ForestConfig{
			NumTrees:       p.NumTrees,
			MaxDepth:       p.MaxDepth,
			MinSamplesLeaf: p.MinSamplesLeaf,
			MaxFeatures:    p.MaxFeatures,
			Seed:           p.Seed,
			Workers:        opt.Workers,
		})
		rf.importances = append([]float64(nil), meta.Importances...)
		rf.flatMeta = &meta
		rf.fitted = true
		rf.compiled = &CompiledForest{
			tab:     nodeTable{nodes: f.Nodes, roots: f.Roots, depth: f.Depth},
			Workers: opt.Workers,
		}
		return rf, nil
	default: // "DTR", enforced by validateFlatMeta
		// A single tree reuses the JSON loader: decompile the (single)
		// table range to the canonical preorder dump and load that. Trees
		// are tiny and never the pipeline's selected model, so the extra
		// O(n) compile is irrelevant.
		nodes, err := decompileRange(f.Nodes, 0, int32(len(f.Nodes)))
		if err != nil {
			return nil, err
		}
		return LoadTree(&TreeDump{
			Config:      meta.TreeConfigs[0],
			Nodes:       nodes,
			Importances: append([]float64(nil), meta.TreeImportances[0]...),
		})
	}
}

// validateFlatMeta checks the metadata's internal consistency for a
// table of treeCount trees.
func validateFlatMeta(m *FlatMeta, treeCount int) error {
	switch m.Kind {
	case "GBR":
		if m.GBR == nil || m.Forest != nil {
			return badModel("flat GBR metadata needs exactly the gbr params")
		}
		if !isFinite(m.GBR.LearningRate) || m.GBR.LearningRate <= 0 {
			return badModel("flat GBR learning rate %v out of range", m.GBR.LearningRate)
		}
		if !isFinite(m.Base) {
			return badModel("flat GBR base prediction is non-finite")
		}
	case "RFR":
		if m.Forest == nil || m.GBR != nil {
			return badModel("flat forest metadata needs exactly the forest params")
		}
		if m.Base != 0 {
			return badModel("flat forest carries a base prediction")
		}
	case "DTR":
		if m.GBR != nil || m.Forest != nil {
			return badModel("flat tree metadata carries ensemble params")
		}
		if m.Base != 0 {
			return badModel("flat tree carries a base prediction")
		}
	default:
		return badModel("flat model kind %q unknown", m.Kind)
	}
	if treeCount == 0 {
		return badModel("flat model has no trees")
	}
	if len(m.TreeConfigs) != treeCount {
		return badModel("flat model has %d tree configs for %d trees", len(m.TreeConfigs), treeCount)
	}
	if len(m.TreeImportances) != 0 && len(m.TreeImportances) != treeCount {
		return badModel("flat model has %d tree importance vectors for %d trees", len(m.TreeImportances), treeCount)
	}
	if m.Kind == "DTR" && (treeCount != 1 || len(m.TreeImportances) != 1) {
		return badModel("flat tree must carry exactly one tree")
	}
	if err := checkImportances(m.Importances); err != nil {
		return err
	}
	for _, im := range m.TreeImportances {
		if err := checkImportances(im); err != nil {
			return err
		}
	}
	return nil
}

// validateNodeTable proves a flat table safe for the walk kernels by
// replaying appendTree's breadth-first allocation discipline over every
// tree range: the root is the range's first slot, each internal node's
// left child is the next unallocated slot (its right sibling follows
// immediately), leaves self-loop on a +Inf threshold, every slot is
// allocated exactly once, and the declared per-tree height matches the
// one re-derived from the structure. A table that passes can never
// index out of range or run a lane past its leaf.
func validateNodeTable(nodes []NodeRec, roots, depth []int32) error {
	n := int32(len(nodes))
	if len(roots) == 0 {
		return badModel("flat table has no trees")
	}
	if len(depth) != len(roots) {
		return badModel("flat table has %d depths for %d roots", len(depth), len(roots))
	}
	if roots[0] != 0 {
		return badModel("flat table's first root is %d, want 0", roots[0])
	}
	heights := make([]int32, 0, 64)
	for k := range roots {
		lo := roots[k]
		hi := n
		if k+1 < len(roots) {
			hi = roots[k+1]
		}
		if lo >= hi {
			return badModel("flat tree %d has an empty or inverted range [%d,%d)", k, lo, hi)
		}
		if depth[k] < 0 || depth[k] > maxTreeDepth {
			return badModel("flat tree %d declares height %d, limit %d", k, depth[k], maxTreeDepth)
		}
		// Breadth-first allocation replay.
		next := lo + 1
		for j := lo; j < hi; j++ {
			nd := nodes[j]
			if math.IsInf(nd.Thresh, 1) { // leaf
				if nd.Feature != 0 || nd.Left != j {
					return badModel("flat leaf %d does not self-loop", j)
				}
				if !isFinite(nd.Pred) {
					return badModel("flat leaf %d has non-finite prediction", j)
				}
				continue
			}
			if !isFinite(nd.Thresh) {
				return badModel("flat node %d has non-finite threshold", j)
			}
			if nd.Feature < 0 || nd.Feature > maxFeatureIndex {
				return badModel("flat node %d has feature index %d out of range", j, nd.Feature)
			}
			if nd.Pred != 0 {
				return badModel("flat internal node %d carries a leaf prediction", j)
			}
			if nd.Left != next || next+2 > hi {
				return badModel("flat node %d breaks the breadth-first child layout", j)
			}
			next += 2
		}
		if next != hi {
			return badModel("flat tree %d allocates %d of %d slots", k, next-lo, hi-lo)
		}
		// Height replay: children always follow parents in BFS order, so
		// one reverse scan derives every subtree height.
		heights = append(heights[:0], make([]int32, hi-lo)...)
		for j := hi - 1; j >= lo; j-- {
			nd := nodes[j]
			if math.IsInf(nd.Thresh, 1) {
				continue // leaf height 0, already zeroed
			}
			l, r := heights[nd.Left-lo], heights[nd.Left+1-lo]
			if r > l {
				l = r
			}
			heights[j-lo] = 1 + l
		}
		if heights[0] != depth[k] {
			return badModel("flat tree %d declares height %d, structure says %d", k, depth[k], heights[0])
		}
	}
	return nil
}

// decompileRange re-emits the canonical preorder node list for the
// tree occupying table slots [lo, hi). Because fitted trees are dumped
// in preorder and compiled tables preserve dump indices, this
// reproduces the exact node list the tree was flattened from — which
// is what keeps binary→json conversion byte-identical. The range must
// have passed validateNodeTable (the recursion is bounded by the
// validated tree height).
func decompileRange(nodes []NodeRec, lo, hi int32) ([]NodeDump, error) {
	if lo < 0 || hi > int32(len(nodes)) || lo >= hi {
		return nil, badModel("decompile range [%d,%d) out of bounds", lo, hi)
	}
	out := make([]NodeDump, 0, hi-lo)
	var rec func(abs int32) int
	rec = func(abs int32) int {
		idx := len(out)
		out = append(out, NodeDump{})
		nd := nodes[abs]
		if math.IsInf(nd.Thresh, 1) {
			out[idx] = NodeDump{Value: nd.Pred, Leaf: true}
			return idx
		}
		l := rec(nd.Left)
		r := rec(nd.Left + 1)
		out[idx] = NodeDump{Feature: int(nd.Feature), Threshold: nd.Thresh, Left: l, Right: r}
		return idx
	}
	rec(lo)
	if int32(len(out)) != hi-lo {
		return nil, badModel("decompile visited %d of %d nodes", len(out), hi-lo)
	}
	return out, nil
}

// treeDumpsFromTable decompiles every tree of a kernel table back to
// its TreeDump, re-attaching the per-tree configs and importances the
// flat metadata retained. This is the Dump path of flat-restored
// ensembles (trees == nil).
func treeDumpsFromTable(tab *nodeTable, meta *FlatMeta) ([]TreeDump, error) {
	if meta == nil {
		return nil, badModel("flat-restored model lost its metadata")
	}
	if len(meta.TreeConfigs) != len(tab.roots) {
		return nil, badModel("flat metadata has %d tree configs for %d trees", len(meta.TreeConfigs), len(tab.roots))
	}
	dumps := make([]TreeDump, len(tab.roots))
	for k := range tab.roots {
		lo := tab.roots[k]
		hi := int32(len(tab.nodes))
		if k+1 < len(tab.roots) {
			hi = tab.roots[k+1]
		}
		nodes, err := decompileRange(tab.nodes, lo, hi)
		if err != nil {
			return nil, err
		}
		dumps[k] = TreeDump{Config: meta.TreeConfigs[k], Nodes: nodes}
		if k < len(meta.TreeImportances) {
			dumps[k].Importances = append([]float64(nil), meta.TreeImportances[k]...)
		}
	}
	return dumps, nil
}
