package ml

import (
	"math"
	"math/rand"
	"testing"
)

// synth generates a nonlinear regression problem with d features, of which
// only the first `informative` matter.
func synth(n, d, informative int, noise float64, seed int64) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.Float64()*2 - 1
		}
		X[i] = row
		v := 0.0
		if informative > 0 {
			v += 3 * row[0]
		}
		if informative > 1 {
			v += 2 * row[1] * row[1]
		}
		if informative > 2 {
			v += math.Sin(3 * row[2])
		}
		for j := 3; j < informative; j++ {
			v += 0.5 * row[j]
		}
		y[i] = v + r.NormFloat64()*noise
	}
	return X, y
}

func fitAndScore(t *testing.T, m Regressor, seed int64) float64 {
	t.Helper()
	X, y := synth(600, 6, 3, 0.05, seed)
	Xtr, ytr, Xte, yte, err := TrainTestSplit(X, y, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(Xtr, ytr); err != nil {
		t.Fatal(err)
	}
	r2, err := R2Score(m, Xte, yte)
	if err != nil {
		t.Fatal(err)
	}
	return r2
}

func TestDecisionTreeLearns(t *testing.T) {
	r2 := fitAndScore(t, NewDecisionTree(TreeConfig{MaxDepth: 10}), 2)
	if r2 < 0.7 {
		t.Fatalf("DTR R2 = %v, want > 0.7", r2)
	}
}

func TestRandomForestBeatsSingleTree(t *testing.T) {
	tree := fitAndScore(t, NewDecisionTree(TreeConfig{MaxDepth: 10}), 3)
	forest := fitAndScore(t, NewRandomForest(ForestConfig{NumTrees: 20, MaxDepth: 10, Seed: 3}), 3)
	if forest <= tree {
		t.Fatalf("RFR (%v) should beat DTR (%v) — the Table 3 ordering", forest, tree)
	}
	if forest < 0.85 {
		t.Fatalf("RFR R2 = %v, want > 0.85", forest)
	}
}

func TestGradientBoostedHighAccuracy(t *testing.T) {
	r2 := fitAndScore(t, NewGradientBoosted(GBRConfig{Seed: 4}), 4)
	if r2 < 0.9 {
		t.Fatalf("GBR R2 = %v, want > 0.9 (the paper's best model)", r2)
	}
}

func TestKNNLearns(t *testing.T) {
	r2 := fitAndScore(t, NewKNN(KNNConfig{K: 8}), 5)
	if r2 < 0.6 {
		t.Fatalf("KNR R2 = %v, want > 0.6", r2)
	}
}

func TestSVRLearns(t *testing.T) {
	r2 := fitAndScore(t, NewSVR(SVRConfig{Seed: 6}), 6)
	if r2 < 0.7 {
		t.Fatalf("SVR R2 = %v, want > 0.7", r2)
	}
}

func TestMLPLearns(t *testing.T) {
	cfg := MLPConfig{HiddenLayers: []int{64, 16}, Epochs: 120, Seed: 7}
	r2 := fitAndScore(t, NewMLP(cfg), 7)
	if r2 < 0.85 {
		t.Fatalf("ANN R2 = %v, want > 0.85", r2)
	}
}

func TestModelNames(t *testing.T) {
	names := map[string]Regressor{
		"DTR": NewDecisionTree(TreeConfig{}),
		"RFR": NewRandomForest(ForestConfig{}),
		"GBR": NewGradientBoosted(GBRConfig{}),
		"KNR": NewKNN(KNNConfig{}),
		"SVR": NewSVR(SVRConfig{}),
		"ANN": NewMLP(MLPConfig{}),
	}
	for want, m := range names {
		if m.Name() != want {
			t.Fatalf("Name() = %q, want %q", m.Name(), want)
		}
		// Unfitted models predict 0 rather than panicking.
		if got := m.Predict([]float64{1, 2, 3}); got != 0 {
			t.Fatalf("unfitted %s predicts %v", want, got)
		}
	}
}

func TestFitValidation(t *testing.T) {
	models := []Regressor{
		NewDecisionTree(TreeConfig{}),
		NewRandomForest(ForestConfig{NumTrees: 2}),
		NewGradientBoosted(GBRConfig{NumStages: 2}),
		NewKNN(KNNConfig{}),
		NewSVR(SVRConfig{MaxIter: 10}),
		NewMLP(MLPConfig{Epochs: 1}),
	}
	for _, m := range models {
		if err := m.Fit(nil, nil); err == nil {
			t.Fatalf("%s accepted empty training set", m.Name())
		}
		if err := m.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
			t.Fatalf("%s accepted mismatched lengths", m.Name())
		}
		if err := m.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
			t.Fatalf("%s accepted ragged rows", m.Name())
		}
	}
}

func TestTreeImportancesIdentifyInformativeFeatures(t *testing.T) {
	X, y := synth(800, 8, 2, 0.05, 11)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 10})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := tree.Importances()
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v, want 1", sum)
	}
	// Features 0 and 1 carry all the signal.
	if imp[0]+imp[1] < 0.8 {
		t.Fatalf("informative features carry %v of importance, want > 0.8 (%v)", imp[0]+imp[1], imp)
	}
}

func TestGBRImportances(t *testing.T) {
	X, y := synth(500, 6, 2, 0.05, 12)
	g := NewGradientBoosted(GBRConfig{NumStages: 50, Seed: 12})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := g.Importances()
	if imp[0]+imp[1] < 0.7 {
		t.Fatalf("GBR importances miss the signal: %v", imp)
	}
}

func TestTrainTestSplit(t *testing.T) {
	X, y := synth(100, 3, 2, 0, 13)
	Xtr, ytr, Xte, yte, err := TrainTestSplit(X, y, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(Xtr) != 70 || len(Xte) != 30 || len(ytr) != 70 || len(yte) != 30 {
		t.Fatalf("split sizes = %d/%d", len(Xtr), len(Xte))
	}
	// Deterministic for fixed seed.
	Xtr2, _, _, _, _ := TrainTestSplit(X, y, 0.7, 9)
	for i := range Xtr {
		if &Xtr[i][0] != &Xtr2[i][0] {
			t.Fatal("split not deterministic")
		}
	}
	if _, _, _, _, err := TrainTestSplit(X, y, 0, 1); err == nil {
		t.Fatal("zero train fraction should error")
	}
	if _, _, _, _, err := TrainTestSplit(nil, nil, 0.5, 1); err == nil {
		t.Fatal("empty data should error")
	}
}

func TestRecursiveFeatureElimination(t *testing.T) {
	X, y := synth(600, 8, 3, 0.05, 14)
	Xtr, ytr, Xte, yte, _ := TrainTestSplit(X, y, 0.7, 2)
	names := []string{"f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"}
	steps, err := RecursiveFeatureElimination(
		func() Regressor { return NewGradientBoosted(GBRConfig{NumStages: 40, Seed: 14}) },
		Xtr, ytr, Xte, yte, names, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 { // 8 features down to 3
		t.Fatalf("steps = %d, want 6", len(steps))
	}
	if len(steps[0].Features) != 8 || len(steps[len(steps)-1].Features) != 3 {
		t.Fatalf("feature counts wrong: first %d last %d",
			len(steps[0].Features), len(steps[len(steps)-1].Features))
	}
	// The informative features f0..f2 must survive to the last-but-one step.
	last := steps[len(steps)-1].Features
	informative := 0
	for _, f := range last {
		if f == "f0" || f == "f1" || f == "f2" {
			informative++
		}
	}
	if informative != len(last) {
		t.Fatalf("uninformative features survived elimination: %v", last)
	}
	// Accuracy with few informative features retained should stay close to
	// the full-feature accuracy.
	if steps[len(steps)-1].R2 < steps[0].R2-0.1 {
		t.Fatalf("accuracy collapsed after elimination: %v -> %v",
			steps[0].R2, steps[len(steps)-1].R2)
	}
	// All steps except the last record what was dropped.
	for i, s := range steps {
		if i < len(steps)-1 && s.Dropped == "" {
			t.Fatalf("step %d missing Dropped", i)
		}
	}
	if steps[len(steps)-1].Dropped != "" {
		t.Fatal("final step should not drop anything")
	}
}

func TestRankFeatures(t *testing.T) {
	X, y := synth(600, 6, 2, 0.05, 15)
	names := []string{"a", "b", "c", "d", "e", "f"}
	ranked, err := RankFeatures(
		func() Regressor { return NewDecisionTree(TreeConfig{MaxDepth: 10}) },
		X, y, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 6 {
		t.Fatalf("ranked = %v", ranked)
	}
	top2 := map[string]bool{ranked[0]: true, ranked[1]: true}
	if !top2["a"] || !top2["b"] {
		t.Fatalf("top features = %v, want a and b first", ranked[:2])
	}
}

func TestRFEErrors(t *testing.T) {
	if _, err := RecursiveFeatureElimination(nil, nil, nil, nil, nil, nil, 1); err == nil {
		t.Fatal("empty sets should error")
	}
	X, y := synth(50, 3, 2, 0, 16)
	if _, err := RecursiveFeatureElimination(
		func() Regressor { return NewKNN(KNNConfig{}) },
		X, y, X, y, []string{"a", "b", "c"}, 1); err == nil {
		t.Fatal("model without importances should error")
	}
	if _, err := RankFeatures(func() Regressor { return NewKNN(KNNConfig{}) }, X, y, []string{"a", "b", "c"}); err == nil {
		t.Fatal("RankFeatures without importances should error")
	}
}

func TestTable3OrderingEmerges(t *testing.T) {
	// The paper's qualitative finding: GBR and ANN lead, RFR close behind,
	// single DTR and KNR trail. Verify GBR beats DTR and KNR on the same
	// problem.
	gbr := fitAndScore(t, NewGradientBoosted(GBRConfig{Seed: 20}), 20)
	dtr := fitAndScore(t, NewDecisionTree(TreeConfig{MaxDepth: 10}), 20)
	knr := fitAndScore(t, NewKNN(KNNConfig{K: 8}), 20)
	if !(gbr > dtr && gbr > knr) {
		t.Fatalf("Table 3 ordering violated: GBR=%v DTR=%v KNR=%v", gbr, dtr, knr)
	}
}

func TestFitDeterminismAcrossModels(t *testing.T) {
	X, y := synth(300, 5, 3, 0.05, 77)
	factories := []func() Regressor{
		func() Regressor { return NewDecisionTree(TreeConfig{MaxDepth: 8, Seed: 1}) },
		func() Regressor { return NewRandomForest(ForestConfig{NumTrees: 5, Seed: 1}) },
		func() Regressor { return NewGradientBoosted(GBRConfig{NumStages: 20, Seed: 1}) },
		func() Regressor { return NewKNN(KNNConfig{K: 4}) },
		func() Regressor { return NewSVR(SVRConfig{MaxIter: 5000, Seed: 1}) },
		func() Regressor { return NewMLP(MLPConfig{HiddenLayers: []int{16}, Epochs: 20, Seed: 1}) },
	}
	probe := X[17]
	for _, mk := range factories {
		m1, m2 := mk(), mk()
		if err := m1.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if err := m2.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if m1.Predict(probe) != m2.Predict(probe) {
			t.Fatalf("%s is nondeterministic for a fixed seed", m1.Name())
		}
	}
}

func TestGBRMoreStagesFitBetter(t *testing.T) {
	X, y := synth(500, 5, 3, 0.02, 78)
	few := NewGradientBoosted(GBRConfig{NumStages: 5, Seed: 2})
	many := NewGradientBoosted(GBRConfig{NumStages: 120, Seed: 2})
	if err := few.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := many.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	rFew, _ := R2Score(few, X, y)
	rMany, _ := R2Score(many, X, y)
	if rMany <= rFew {
		t.Fatalf("more boosting stages should fit better: %v vs %v", rMany, rFew)
	}
}

func TestConstantTargetModels(t *testing.T) {
	// A constant target must be learned exactly (or near) by every model
	// without NaNs.
	X, _ := synth(100, 3, 2, 0, 79)
	y := make([]float64, len(X))
	for i := range y {
		y[i] = 42
	}
	models := []Regressor{
		NewDecisionTree(TreeConfig{}),
		NewRandomForest(ForestConfig{NumTrees: 3}),
		NewGradientBoosted(GBRConfig{NumStages: 5}),
		NewKNN(KNNConfig{K: 3}),
		NewMLP(MLPConfig{HiddenLayers: []int{8}, Epochs: 30}),
	}
	for _, m := range models {
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		got := m.Predict(X[0])
		if math.IsNaN(got) || math.Abs(got-42) > 2 {
			t.Fatalf("%s predicts %v for a constant target 42", m.Name(), got)
		}
	}
}

func TestKNNKLargerThanTrainingSet(t *testing.T) {
	k := NewKNN(KNNConfig{K: 50})
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{1, 2, 3}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Falls back to averaging the whole set.
	if got := k.Predict([]float64{2}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("KNN with k > n should average all targets, got %v", got)
	}
}

func TestProjectColumns(t *testing.T) {
	X := [][]float64{{1, 2, 3}, {4, 5, 6}}
	got := ProjectColumns(X, []int{2, 0})
	if got[0][0] != 3 || got[0][1] != 1 || got[1][0] != 6 || got[1][1] != 4 {
		t.Fatalf("ProjectColumns = %v", got)
	}
}

// TestPredictAllMatchesPredict checks BatchRegressor implementations are
// bit-identical to their per-point Predict, for every worker count.
func TestPredictAllMatchesPredict(t *testing.T) {
	X, y := synth(300, 5, 3, 0.05, 11)
	models := []BatchRegressor{
		NewDecisionTree(TreeConfig{MaxDepth: 8}),
		NewRandomForest(ForestConfig{NumTrees: 12, MaxDepth: 6, Seed: 2, Workers: 3}),
		NewGradientBoosted(GBRConfig{NumStages: 40, MaxDepth: 3, Seed: 2, Workers: 3}),
	}
	for _, m := range models {
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		batch := m.PredictAll(X)
		for i, x := range X {
			if p := m.Predict(x); p != batch[i] {
				t.Fatalf("%s: row %d: PredictAll %v != Predict %v", m.Name(), i, batch[i], p)
			}
		}
	}
}

// TestEnsembleFitDeterministicAcrossWorkers checks that the parallel
// bagged-forest fit and the parallel GBR residual update produce the same
// model as a serial fit.
func TestEnsembleFitDeterministicAcrossWorkers(t *testing.T) {
	X, y := synth(400, 6, 3, 0.05, 13)
	probe, _ := synth(50, 6, 3, 0, 14)

	type mk func(workers int) BatchRegressor
	cases := map[string]mk{
		"RFR": func(w int) BatchRegressor {
			return NewRandomForest(ForestConfig{NumTrees: 10, MaxDepth: 8, Seed: 3, Workers: w})
		},
		"GBR": func(w int) BatchRegressor {
			return NewGradientBoosted(GBRConfig{NumStages: 30, MaxDepth: 3, Subsample: 0.8, Seed: 3, Workers: w})
		},
	}
	for name, mkModel := range cases {
		serial := mkModel(1)
		if err := serial.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		want := serial.PredictAll(probe)
		wantImp := serial.(Importancer).Importances()
		for _, workers := range []int{2, 8} {
			par := mkModel(workers)
			if err := par.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			got := par.PredictAll(probe)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s Workers=%d: prediction %d differs: %v vs %v", name, workers, i, got[i], want[i])
				}
			}
			for j, imp := range par.(Importancer).Importances() {
				if imp != wantImp[j] {
					t.Fatalf("%s Workers=%d: importance %d differs: %v vs %v", name, workers, j, imp, wantImp[j])
				}
			}
		}
	}
}

func TestCrossValidateSubsets(t *testing.T) {
	X, y := synth(300, 6, 3, 0.05, 17)
	features := []string{"f0", "f1", "f2", "f3", "f4", "f5"}
	candidates := [][]int{
		{0, 1, 2},    // the informative set
		{3, 4, 5},    // pure noise
		{0, 1, 2, 3}, // informative + noise
	}
	mk := func() Regressor { return NewGradientBoosted(GBRConfig{NumStages: 40, MaxDepth: 3, Seed: 5}) }
	scores, err := CrossValidateSubsets(mk, X, y, features, candidates, 5, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(candidates) {
		t.Fatalf("got %d scores, want %d", len(scores), len(candidates))
	}
	best := BestSubset(scores)
	if best == 1 {
		t.Fatalf("noise-only subset won: %+v", scores)
	}
	if scores[0].MeanR2 <= scores[1].MeanR2 {
		t.Fatalf("informative subset (%v) not better than noise (%v)", scores[0].MeanR2, scores[1].MeanR2)
	}
	if len(scores[0].FoldR2) != 5 {
		t.Fatalf("fold count = %d, want 5", len(scores[0].FoldR2))
	}
	if scores[0].Features[0] != "f0" || scores[2].Features[3] != "f3" {
		t.Fatalf("feature names mismapped: %+v", scores)
	}
}

func TestCrossValidateSubsetsDeterministicAcrossWorkers(t *testing.T) {
	X, y := synth(240, 5, 3, 0.05, 19)
	features := []string{"a", "b", "c", "d", "e"}
	var candidates [][]int
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			candidates = append(candidates, []int{i, j})
		}
	}
	mk := func() Regressor { return NewRandomForest(ForestConfig{NumTrees: 8, MaxDepth: 6, Seed: 7}) }
	want, err := CrossValidateSubsets(mk, X, y, features, candidates, 4, 21, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := CrossValidateSubsets(mk, X, y, features, candidates, 4, 21, workers)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range want {
			if want[ci].MeanR2 != got[ci].MeanR2 {
				t.Fatalf("workers=%d: candidate %d mean R² %v != %v", workers, ci, got[ci].MeanR2, want[ci].MeanR2)
			}
			for k := range want[ci].FoldR2 {
				if want[ci].FoldR2[k] != got[ci].FoldR2[k] {
					t.Fatalf("workers=%d: candidate %d fold %d differs", workers, ci, k)
				}
			}
		}
	}
}

func TestCrossValidateSubsetsValidation(t *testing.T) {
	X, y := synth(30, 3, 2, 0.05, 23)
	mk := func() Regressor { return NewDecisionTree(TreeConfig{MaxDepth: 4}) }
	if _, err := CrossValidateSubsets(mk, X, y, []string{"a", "b", "c"}, nil, 3, 1, 0); err == nil {
		t.Fatal("no candidates must error")
	}
	if _, err := CrossValidateSubsets(mk, X, y, []string{"a", "b"}, [][]int{{0}}, 3, 1, 0); err == nil {
		t.Fatal("name/column mismatch must error")
	}
	if _, err := CrossValidateSubsets(mk, X, y, []string{"a", "b", "c"}, [][]int{{}}, 3, 1, 0); err == nil {
		t.Fatal("empty candidate must error")
	}
	if _, err := CrossValidateSubsets(mk, X, y, []string{"a", "b", "c"}, [][]int{{3}}, 3, 1, 0); err == nil {
		t.Fatal("out-of-range column must error")
	}
	if BestSubset(nil) != -1 {
		t.Fatal("BestSubset(nil) != -1")
	}
}
