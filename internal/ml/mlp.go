package ml

import (
	"math"
	"math/rand"
)

// MLPConfig configures the multilayer-perceptron regressor (Table 3:
// hidden_layer=(200, 20), alpha=1e-5).
type MLPConfig struct {
	HiddenLayers []int
	Alpha        float64 // L2 penalty
	LearningRate float64
	Epochs       int
	BatchSize    int
	Seed         int64
}

func (c MLPConfig) withDefaults() MLPConfig {
	if len(c.HiddenLayers) == 0 {
		c.HiddenLayers = []int{200, 20}
	}
	if c.Alpha <= 0 {
		c.Alpha = 1e-5
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 1e-3
	}
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	return c
}

type layer struct {
	w [][]float64 // [out][in]
	b []float64
	// Adam moments.
	mw, vw [][]float64
	mb, vb []float64
}

// MLP is a fully connected ReLU network trained with Adam on squared loss.
// Inputs and target are standardized internally.
type MLP struct {
	Config MLPConfig

	scaler      *scaler
	yMean, yStd float64
	layers      []*layer
	fitted      bool
}

// NewMLP builds an unfitted MLP.
func NewMLP(cfg MLPConfig) *MLP {
	return &MLP{Config: cfg.withDefaults()}
}

// Name implements Regressor.
func (m *MLP) Name() string { return "ANN" }

func newLayer(in, out int, rng *rand.Rand) *layer {
	l := &layer{
		w:  make([][]float64, out),
		b:  make([]float64, out),
		mw: make([][]float64, out),
		vw: make([][]float64, out),
		mb: make([]float64, out),
		vb: make([]float64, out),
	}
	// He initialization for ReLU.
	scale := math.Sqrt(2 / float64(in))
	for o := 0; o < out; o++ {
		l.w[o] = make([]float64, in)
		l.mw[o] = make([]float64, in)
		l.vw[o] = make([]float64, in)
		for i := 0; i < in; i++ {
			l.w[o][i] = rng.NormFloat64() * scale
		}
	}
	return l
}

// Fit implements Regressor.
func (m *MLP) Fit(X [][]float64, y []float64) error {
	if err := validate(X, y); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(m.Config.Seed))
	m.scaler = fitScaler(X)
	Xs := m.scaler.transformAll(X)

	// Standardize the target too: keeps gradients well-scaled.
	var ys, ys2 float64
	for _, v := range y {
		ys += v
		ys2 += v * v
	}
	n := float64(len(y))
	m.yMean = ys / n
	m.yStd = math.Sqrt(ys2/n - m.yMean*m.yMean)
	if m.yStd == 0 {
		m.yStd = 1
	}
	yt := make([]float64, len(y))
	for i, v := range y {
		yt[i] = (v - m.yMean) / m.yStd
	}

	sizes := append([]int{len(X[0])}, m.Config.HiddenLayers...)
	sizes = append(sizes, 1)
	m.layers = make([]*layer, len(sizes)-1)
	for i := range m.layers {
		m.layers[i] = newLayer(sizes[i], sizes[i+1], rng)
	}

	adamStep := 0
	for epoch := 0; epoch < m.Config.Epochs; epoch++ {
		order := rng.Perm(len(Xs))
		for start := 0; start < len(order); start += m.Config.BatchSize {
			end := start + m.Config.BatchSize
			if end > len(order) {
				end = len(order)
			}
			adamStep++
			m.trainBatch(Xs, yt, order[start:end], adamStep)
		}
	}
	m.fitted = true
	return nil
}

// forward returns per-layer activations (post-ReLU, last layer linear).
func (m *MLP) forward(x []float64) [][]float64 {
	acts := make([][]float64, len(m.layers)+1)
	acts[0] = x
	cur := x
	for li, l := range m.layers {
		out := make([]float64, len(l.w))
		for o := range l.w {
			s := l.b[o]
			for i, w := range l.w[o] {
				s += w * cur[i]
			}
			if li < len(m.layers)-1 && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			out[o] = s
		}
		acts[li+1] = out
		cur = out
	}
	return acts
}

func (m *MLP) trainBatch(X [][]float64, y []float64, idx []int, step int) {
	// Accumulate gradients over the batch.
	gw := make([][][]float64, len(m.layers))
	gb := make([][]float64, len(m.layers))
	for li, l := range m.layers {
		gw[li] = make([][]float64, len(l.w))
		for o := range l.w {
			gw[li][o] = make([]float64, len(l.w[o]))
		}
		gb[li] = make([]float64, len(l.b))
	}
	for _, i := range idx {
		acts := m.forward(X[i])
		// Output delta (squared loss, linear output).
		delta := []float64{acts[len(acts)-1][0] - y[i]}
		for li := len(m.layers) - 1; li >= 0; li-- {
			l := m.layers[li]
			in := acts[li]
			// Gradients for this layer.
			for o := range l.w {
				gb[li][o] += delta[o]
				for j := range l.w[o] {
					gw[li][o][j] += delta[o] * in[j]
				}
			}
			if li == 0 {
				break
			}
			// Backpropagate through ReLU of the previous layer.
			prev := make([]float64, len(in))
			for j := range in {
				if in[j] <= 0 {
					continue // ReLU derivative is 0
				}
				var s float64
				for o := range l.w {
					s += l.w[o][j] * delta[o]
				}
				prev[j] = s
			}
			delta = prev
		}
	}

	// Adam update.
	const beta1, beta2, epsAdam = 0.9, 0.999, 1e-8
	lr := m.Config.LearningRate
	bc1 := 1 - math.Pow(beta1, float64(step))
	bc2 := 1 - math.Pow(beta2, float64(step))
	scale := 1 / float64(len(idx))
	for li, l := range m.layers {
		for o := range l.w {
			for j := range l.w[o] {
				g := gw[li][o][j]*scale + m.Config.Alpha*l.w[o][j]
				l.mw[o][j] = beta1*l.mw[o][j] + (1-beta1)*g
				l.vw[o][j] = beta2*l.vw[o][j] + (1-beta2)*g*g
				l.w[o][j] -= lr * (l.mw[o][j] / bc1) / (math.Sqrt(l.vw[o][j]/bc2) + epsAdam)
			}
			g := gb[li][o] * scale
			l.mb[o] = beta1*l.mb[o] + (1-beta1)*g
			l.vb[o] = beta2*l.vb[o] + (1-beta2)*g*g
			l.b[o] -= lr * (l.mb[o] / bc1) / (math.Sqrt(l.vb[o]/bc2) + epsAdam)
		}
	}
}

// Predict implements Regressor.
func (m *MLP) Predict(x []float64) float64 {
	if !m.fitted {
		return 0
	}
	acts := m.forward(m.scaler.transform(x))
	return acts[len(acts)-1][0]*m.yStd + m.yMean
}
