package ml

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"

	"merchandiser/internal/merr"
	"merchandiser/internal/obs"
)

// serializeTrainingSet builds a deterministic nonlinear regression set
// large enough that fitted trees have real structure.
func serializeTrainingSet(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64() * 10
		}
		X[i] = row
		y[i] = math.Sin(row[0]) + 0.5*row[1] + row[0]*row[2]/10 + rng.NormFloat64()*0.1
	}
	return X, y
}

// roundTripJSON pushes a dump through its JSON encoding, like the
// artifact store does.
func roundTripJSON[T any](t *testing.T, in *T) *T {
	t.Helper()
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out := new(T)
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out
}

func assertBitEqualPredictions(t *testing.T, want, got Regressor, X [][]float64) {
	t.Helper()
	for i, x := range X {
		w, g := want.Predict(x), got.Predict(x)
		if math.Float64bits(w) != math.Float64bits(g) {
			t.Fatalf("row %d: predictions differ: %v vs %v", i, w, g)
		}
	}
	wb, _ := want.(BatchRegressor)
	gb, _ := got.(BatchRegressor)
	if wb == nil || gb == nil {
		return
	}
	wAll, gAll := wb.PredictAll(X), gb.PredictAll(X)
	for i := range wAll {
		if math.Float64bits(wAll[i]) != math.Float64bits(gAll[i]) {
			t.Fatalf("batch row %d: predictions differ: %v vs %v", i, wAll[i], gAll[i])
		}
	}
}

func TestTreeDumpRoundTrip(t *testing.T) {
	X, y := serializeTrainingSet(200, 4, 1)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 6, Seed: 7})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	d, err := tree.Dump()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTree(roundTripJSON(t, d))
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := serializeTrainingSet(100, 4, 2)
	assertBitEqualPredictions(t, tree, loaded, probe)
	wantImp, gotImp := tree.Importances(), loaded.Importances()
	for i := range wantImp {
		if wantImp[i] != gotImp[i] {
			t.Fatalf("importance %d differs: %v vs %v", i, wantImp[i], gotImp[i])
		}
	}
}

func TestGBRDumpRoundTripNoRefit(t *testing.T) {
	X, y := serializeTrainingSet(300, 5, 3)
	g := NewGradientBoosted(GBRConfig{NumStages: 30, MaxDepth: 3, Subsample: 0.8, Seed: 11})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	d, err := g.Dump()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	loaded, err := LoadGBR(roundTripJSON(t, d), LoadOptions{Workers: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := serializeTrainingSet(150, 5, 4)
	assertBitEqualPredictions(t, g, loaded, probe)
	if got := reg.Counter("ml.gbr.fits").Value(); got != 0 {
		t.Fatalf("loading recorded %v fits, want 0", got)
	}
	if got := reg.Counter("ml.gbr.predictions").Value(); got == 0 {
		t.Fatal("loaded model's predictions not observed through the attached registry")
	}
}

func TestForestDumpRoundTrip(t *testing.T) {
	X, y := serializeTrainingSet(250, 4, 5)
	f := NewRandomForest(ForestConfig{NumTrees: 8, MaxDepth: 6, Seed: 13})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	d, err := f.Dump()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadForest(roundTripJSON(t, d), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := serializeTrainingSet(120, 4, 6)
	assertBitEqualPredictions(t, f, loaded, probe)
}

func TestDumpModelTaggedUnion(t *testing.T) {
	X, y := serializeTrainingSet(120, 3, 8)
	g := NewGradientBoosted(GBRConfig{NumStages: 5, Seed: 1})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	d, err := DumpModel(g)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != "GBR" || d.GBR == nil || d.Forest != nil || d.Tree != nil {
		t.Fatalf("unexpected union shape: %+v", d)
	}
	m, err := LoadModel(roundTripJSON(t, d), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "GBR" {
		t.Fatalf("loaded model is %s, want GBR", m.Name())
	}
	probe, _ := serializeTrainingSet(50, 3, 9)
	assertBitEqualPredictions(t, g, m, probe)
}

func TestDumpUnfittedFails(t *testing.T) {
	if _, err := NewDecisionTree(TreeConfig{}).Dump(); !errors.Is(err, merr.ErrUntrained) {
		t.Fatalf("tree dump: %v, want ErrUntrained", err)
	}
	if _, err := NewGradientBoosted(GBRConfig{}).Dump(); !errors.Is(err, merr.ErrUntrained) {
		t.Fatalf("gbr dump: %v, want ErrUntrained", err)
	}
	if _, err := NewRandomForest(ForestConfig{}).Dump(); !errors.Is(err, merr.ErrUntrained) {
		t.Fatalf("forest dump: %v, want ErrUntrained", err)
	}
}

func TestDumpModelUnsupported(t *testing.T) {
	if _, err := DumpModel(NewKNN(KNNConfig{})); err == nil {
		t.Fatal("expected error dumping a non-serializable model")
	}
}

func TestLoadTreeRejectsMalformedDumps(t *testing.T) {
	valid := func() *TreeDump {
		return &TreeDump{Nodes: []NodeDump{
			{Feature: 0, Threshold: 1, Left: 1, Right: 2},
			{Value: -1, Leaf: true},
			{Value: 1, Leaf: true},
		}}
	}
	cases := []struct {
		name   string
		mutate func(*TreeDump)
	}{
		{"empty", func(d *TreeDump) { d.Nodes = nil }},
		{"out of range child", func(d *TreeDump) { d.Nodes[0].Right = 9 }},
		{"negative child", func(d *TreeDump) { d.Nodes[0].Left = -1 }},
		{"self cycle", func(d *TreeDump) { d.Nodes[0].Left = 0 }},
		{"shared subtree", func(d *TreeDump) { d.Nodes[0].Right = 1 }},
		{"unreachable node", func(d *TreeDump) {
			d.Nodes = append(d.Nodes, NodeDump{Value: 3, Leaf: true})
		}},
		{"nan threshold", func(d *TreeDump) { d.Nodes[0].Threshold = math.NaN() }},
		{"inf leaf", func(d *TreeDump) { d.Nodes[1].Value = math.Inf(1) }},
		{"negative feature", func(d *TreeDump) { d.Nodes[0].Feature = -2 }},
		{"bad importance", func(d *TreeDump) { d.Importances = []float64{math.NaN()} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := valid()
			tc.mutate(d)
			if _, err := LoadTree(d); !errors.Is(err, merr.ErrBadArtifact) {
				t.Fatalf("got %v, want ErrBadArtifact", err)
			}
		})
	}
	if _, err := LoadTree(valid()); err != nil {
		t.Fatalf("baseline dump rejected: %v", err)
	}
}

func TestLoadModelRejectsBadUnions(t *testing.T) {
	tree := &TreeDump{Nodes: []NodeDump{{Value: 1, Leaf: true}}}
	cases := []struct {
		name string
		dump *ModelDump
	}{
		{"nil", nil},
		{"no payload", &ModelDump{Kind: "GBR"}},
		{"two payloads", &ModelDump{Kind: "GBR", Tree: tree, GBR: &GBRDump{}}},
		{"kind mismatch", &ModelDump{Kind: "GBR", Tree: tree}},
		{"empty gbr", &ModelDump{Kind: "GBR", GBR: &GBRDump{}}},
		{"empty forest", &ModelDump{Kind: "RFR", Forest: &ForestDump{}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadModel(tc.dump, LoadOptions{}); !errors.Is(err, merr.ErrBadArtifact) {
				t.Fatalf("got %v, want ErrBadArtifact", err)
			}
		})
	}
}

func TestLoadGBRRejectsBadLearningRate(t *testing.T) {
	d := &GBRDump{
		Params: GBRParams{LearningRate: 0},
		Trees:  []TreeDump{{Nodes: []NodeDump{{Value: 1, Leaf: true}}}},
	}
	if _, err := LoadGBR(d, LoadOptions{}); !errors.Is(err, merr.ErrBadArtifact) {
		t.Fatalf("got %v, want ErrBadArtifact", err)
	}
}
