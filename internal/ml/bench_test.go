package ml

import (
	"math"
	"math/rand"
	"testing"
)

// benchData is a nonlinear regression problem at the Table 3 GBR scale.
func benchData(n, d int, seed int64) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.Float64()*2 - 1
		}
		X[i] = row
		y[i] = 3*row[0] + 2*row[1]*row[1] + math.Sin(3*row[2]) + r.NormFloat64()*0.05
	}
	return X, y
}

func benchGBR(b *testing.B) (*GradientBoosted, [][]float64) {
	b.Helper()
	X, y := benchData(2000, 9, 3)
	g := NewGradientBoosted(GBRConfig{NumStages: 150, MaxDepth: 4, Seed: 7, Workers: 1})
	if err := g.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	return g, X
}

// predictAllPointer is the pre-compilation batch path (row-outer over
// pointer trees), kept as the benchmark baseline.
func (g *GradientBoosted) predictAllPointer(X [][]float64) []float64 {
	out := make([]float64, len(X))
	parallelChunks(len(X), g.Config.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = g.predictPointer(X[i])
		}
	})
	return out
}

// BenchmarkPredictPointer measures the original pointer-linked tree
// walk (single point and batch, Workers=1 so the numbers isolate the
// memory layout rather than the goroutine pool).
func BenchmarkPredictPointer(b *testing.B) {
	g, X := benchGBR(b)
	b.Run("single", func(b *testing.B) {
		x := X[0]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.predictPointer(x)
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.predictAllPointer(X)
		}
	})
}

// BenchmarkPredictCompiled measures the flat node-table engine on the
// same fitted model; the batch case runs the block kernel.
func BenchmarkPredictCompiled(b *testing.B) {
	g, X := benchGBR(b)
	b.Run("single", func(b *testing.B) {
		x := X[0]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Predict(x)
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.PredictAll(X)
		}
	})
}
