package ml

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// assertBitEqual compares a compiled prediction path against the
// pointer-walk reference, row by row and in batch.
func assertBitEqual(t *testing.T, name string, X [][]float64, pointer func([]float64) float64, single func([]float64) float64, batch func([][]float64) []float64) {
	t.Helper()
	all := batch(X)
	for i, x := range X {
		want := pointer(x)
		got := single(x)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("%s: row %d single prediction differs: %v vs %v", name, i, want, got)
		}
		if math.Float64bits(want) != math.Float64bits(all[i]) {
			t.Fatalf("%s: row %d batch prediction differs: %v vs %v", name, i, want, all[i])
		}
	}
}

// TestCompiledMatchesPointer is the differential acceptance test for
// the compiled engine: across a spread of randomly fitted models —
// deep and shallow trees, forests, GBRs at several worker counts — and
// across their restored-from-artifact forms, every compiled prediction
// must be bit-identical to the pointer walk the model was fitted as.
func TestCompiledMatchesPointer(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		X, y := serializeTrainingSet(200+10*int(seed), 5, seed)
		probe, _ := serializeTrainingSet(333, 5, seed+100)

		tree := NewDecisionTree(TreeConfig{MaxDepth: 3 + int(seed), Seed: seed})
		if err := tree.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		assertBitEqual(t, "tree", probe, tree.root.predict, tree.Predict, tree.PredictAll)

		forest := NewRandomForest(ForestConfig{NumTrees: 5 + int(seed), MaxDepth: 6, Seed: seed, Workers: int(seed % 3)})
		if err := forest.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		assertBitEqual(t, "forest", probe, forest.predictPointer, forest.Predict, forest.PredictAll)

		gbr := NewGradientBoosted(GBRConfig{NumStages: 20 + 5*int(seed), MaxDepth: 3, Subsample: 0.9, Seed: seed, Workers: int(seed % 4)})
		if err := gbr.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		assertBitEqual(t, "gbr", probe, gbr.predictPointer, gbr.Predict, gbr.PredictAll)

		// Restored models never rebuild pointer trees, so compare them
		// against the original fitted model's pointer walk.
		gd, err := gbr.Dump()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := LoadGBR(roundTripJSON(t, gd), LoadOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if restored.trees[0].root != nil {
			t.Fatal("restored tree rebuilt a pointer tree; the load path should compile straight from the dump")
		}
		assertBitEqual(t, "restored gbr", probe, gbr.predictPointer, restored.Predict, restored.PredictAll)

		fd, err := forest.Dump()
		if err != nil {
			t.Fatal(err)
		}
		restoredF, err := LoadForest(roundTripJSON(t, fd), LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertBitEqual(t, "restored forest", probe, forest.predictPointer, restoredF.Predict, restoredF.PredictAll)
	}
}

// TestCompileExposesEngines covers the public Compile accessors.
func TestCompileExposesEngines(t *testing.T) {
	if _, err := NewDecisionTree(TreeConfig{}).Compile(); err == nil {
		t.Fatal("unfitted tree compiled")
	}
	if _, err := NewRandomForest(ForestConfig{}).Compile(); err == nil {
		t.Fatal("unfitted forest compiled")
	}
	if _, err := NewGradientBoosted(GBRConfig{}).Compile(); err == nil {
		t.Fatal("unfitted gbr compiled")
	}
	X, y := serializeTrainingSet(150, 4, 9)
	g := NewGradientBoosted(GBRConfig{NumStages: 10, MaxDepth: 3, Seed: 9})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	c, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTrees() != 10 {
		t.Fatalf("compiled GBR has %d trees, want 10", c.NumTrees())
	}
	for _, x := range X[:20] {
		if math.Float64bits(c.Predict(x)) != math.Float64bits(g.Predict(x)) {
			t.Fatal("standalone compiled engine disagrees with the model")
		}
	}
}

// TestCompiledDumpRoundTrip asserts compile∘dump is the identity on
// node tables — the invariant that keeps re-snapshotting a restored
// model byte-identical.
func TestCompiledDumpRoundTrip(t *testing.T) {
	X, y := serializeTrainingSet(200, 4, 11)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 7, Seed: 11})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	nodes := tree.flat.dump()
	again, err := compileDump(nodes)
	if err != nil {
		t.Fatal(err)
	}
	raw1, _ := json.Marshal(nodes)
	raw2, _ := json.Marshal(again.dump())
	if string(raw1) != string(raw2) {
		t.Fatal("compile∘dump is not the identity")
	}
}

// TestCompiledPredictZeroAllocs is the allocation regression gate for
// the serve hot path: one compiled single-point prediction — raw
// engine and through the model wrapper — must not allocate.
func TestCompiledPredictZeroAllocs(t *testing.T) {
	X, y := serializeTrainingSet(300, 5, 13)
	g := NewGradientBoosted(GBRConfig{NumStages: 50, MaxDepth: 4, Seed: 13})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	c, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	x := X[0]
	var sink float64
	if allocs := testing.AllocsPerRun(200, func() { sink += c.Predict(x) }); allocs != 0 {
		t.Fatalf("compiled engine Predict allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { sink += g.Predict(x) }); allocs != 0 {
		t.Fatalf("GradientBoosted.Predict allocates %.1f/op, want 0", allocs)
	}
	f := NewRandomForest(ForestConfig{NumTrees: 8, MaxDepth: 5, Seed: 13})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() { sink += f.Predict(x) }); allocs != 0 {
		t.Fatalf("RandomForest.Predict allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}

// FuzzCompileTree feeds arbitrary node tables to the compiler: it must
// reject every malformed table (out-of-range or negative child
// indices, cycles, shared subtrees, unreachable nodes, non-finite
// floats) and produce a terminating, finite, round-trippable engine
// for every table it accepts.
func FuzzCompileTree(f *testing.F) {
	seed := func(nodes []NodeDump) {
		raw, err := json.Marshal(nodes)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	seed([]NodeDump{{Value: 1, Leaf: true}})
	seed([]NodeDump{
		{Feature: 0, Threshold: 1, Left: 1, Right: 2},
		{Value: -1, Leaf: true},
		{Value: 1, Leaf: true},
	})
	seed([]NodeDump{{Feature: 0, Threshold: 1, Left: 0, Right: 9}})
	seed([]NodeDump{{Feature: 1, Threshold: 0.5, Left: 1, Right: 1}, {Value: 2, Leaf: true}})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var nodes []NodeDump
		if err := json.Unmarshal(raw, &nodes); err != nil {
			t.Skip()
		}
		c, err := compileDump(nodes)
		if err != nil {
			return // rejected; nothing to check
		}
		// Accepted tables must be well-formed: every walk terminates at a
		// finite leaf, and the table round-trips through its dump.
		maxFeature := 0
		for _, f := range c.feature {
			if int(f) > maxFeature {
				maxFeature = int(f)
			}
		}
		x := make([]float64, maxFeature+1)
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 8; trial++ {
			for j := range x {
				x[j] = rng.NormFloat64() * 100
			}
			if v := c.Predict(x); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted table predicts non-finite %v", v)
			}
		}
		again, err := compileDump(c.dump())
		if err != nil {
			t.Fatalf("dump of accepted table rejected on recompile: %v", err)
		}
		if again.NumNodes() != c.NumNodes() {
			t.Fatalf("recompiled table has %d nodes, want %d", again.NumNodes(), c.NumNodes())
		}
	})
}
