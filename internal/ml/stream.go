package ml

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"merchandiser/internal/merr"
)

// Feed is an append-only streaming training set: a producer pushes
// completed row groups (one per corpus region, in region order) and a
// paced fitter blocks until the prefix it needs has arrived. Rows are
// only ever appended, so the slices Rows returns stay valid as later
// groups land.
type Feed struct {
	mu       sync.Mutex
	cond     *sync.Cond
	x        [][]float64
	y        []float64
	groupEnd []int // cumulative row count after each pushed group
	dim      int
	closed   bool
	err      error
}

// NewFeed returns an empty open feed.
func NewFeed() *Feed {
	f := &Feed{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Push appends one completed group (possibly empty — a region that
// contributed no samples still counts toward the group sequence). All
// rows across all groups must share one feature dimension.
func (f *Feed) Push(X [][]float64, y []float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("ml: push on closed feed")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: group has %d rows but %d targets", len(X), len(y))
	}
	for _, r := range X {
		if f.dim == 0 {
			f.dim = len(r)
		}
		if len(r) != f.dim || len(r) == 0 {
			return fmt.Errorf("ml: row has %d features, want %d", len(r), f.dim)
		}
	}
	f.x = append(f.x, X...)
	f.y = append(f.y, y...)
	f.groupEnd = append(f.groupEnd, len(f.x))
	f.cond.Broadcast()
	return nil
}

// Close ends the stream. A non-nil err (the producer failed or was
// canceled) is surfaced by every later Rows call. Close is idempotent;
// the first error wins.
func (f *Feed) Close(err error) {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		f.err = err
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Groups returns how many groups have been pushed so far.
func (f *Feed) Groups() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.groupEnd)
}

// Rows blocks until at least wantGroups groups have arrived, then
// returns exactly that prefix (rows of groups [0, wantGroups)) along
// with the group count actually covered. If the feed closes first, Rows
// returns the producer's error, or — when the producer finished clean
// but short — whatever prefix exists with groups < wantGroups. The
// returned slices are stable snapshots: the feed never mutates pushed
// rows.
func (f *Feed) Rows(ctx context.Context, wantGroups int) (X [][]float64, y []float64, groups int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if wantGroups < 1 {
		wantGroups = 1
	}
	stop := context.AfterFunc(ctx, func() {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	defer stop()
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.groupEnd) < wantGroups && !f.closed && ctx.Err() == nil {
		f.cond.Wait()
	}
	if err := merr.FromContext(ctx, "ml: paced fit canceled"); err != nil {
		return nil, nil, 0, err
	}
	if f.err != nil {
		return nil, nil, 0, f.err
	}
	groups = len(f.groupEnd)
	if groups > wantGroups {
		groups = wantGroups
	}
	if groups == 0 {
		return nil, nil, 0, nil
	}
	end := f.groupEnd[groups-1]
	return f.x[:end:end], f.y[:end:end], groups, nil
}

// PaceSchedule is the deterministic pace-car schedule of a paced fit: it
// returns how many leading groups stage `stage` (0-based, of `stages`)
// trains on, given `groups` total groups. The first ceil(ramp·stages)
// stages ramp linearly from groups/rampStages up to all groups; every
// later stage sees everything. ramp <= 0 disables pacing (all groups at
// every stage). The schedule depends only on these four arguments —
// never on timing — which is why paced fits are reproducible across
// worker counts.
func PaceSchedule(stage, stages, groups int, ramp float64) int {
	if groups <= 0 {
		return 0
	}
	if ramp <= 0 || stages <= 0 {
		return groups
	}
	rampStages := int(math.Ceil(ramp * float64(stages)))
	if rampStages < 1 {
		rampStages = 1
	}
	if stage >= rampStages-1 {
		return groups
	}
	g := int(math.Ceil(float64(groups) * float64(stage+1) / float64(rampStages)))
	if g < 1 {
		g = 1
	}
	if g > groups {
		g = groups
	}
	return g
}

// PacedFitter is a model that can train over a streaming Feed with a
// pace-car schedule (today: GradientBoosted).
type PacedFitter interface {
	Regressor
	FitPaced(ctx context.Context, feed *Feed, pc PaceConfig) error
}

// PaceConfig parameterizes GradientBoosted.FitPaced.
type PaceConfig struct {
	// Groups is the total group (region) count the feed will deliver.
	// Required upfront: the pace schedule must be a pure function of the
	// data layout, not of arrival timing.
	Groups int
	// Ramp is the fraction of boosting stages that train on a growing
	// prefix of the feed; 0 means the default 1/3, negative disables
	// pacing entirely (every stage waits for the full feed, making
	// FitPaced bit-identical to FitContext on the same rows).
	Ramp float64
	// MinRows floors the prefix row count: a stage whose scheduled prefix
	// has fewer rows deterministically extends the prefix group by group
	// until the floor is met or the feed is exhausted. 0 means 32.
	MinRows int
	// Gate, when non-nil, is acquired around each boosting stage. The
	// pipelined trainer uses it to share one worker-slot pool with the
	// corpus producers. It is acquired only after the stage's prefix is
	// already available, so a fitter waiting on the feed never holds a
	// slot the producers need.
	Gate func(ctx context.Context) (release func(), err error)
}

// FitPaced trains the GBR over a streaming Feed without waiting for the
// full corpus: boosting stage s fits its tree on the residuals of the
// prefix PaceSchedule(s, ...) groups, so early stages start while later
// regions are still simulating and the pace schedule — not wall-clock
// arrival order — decides what each stage sees. The fitted model is a
// pure function of (feed contents, config): byte-identical across
// worker counts and consumer pacing. With Ramp < 0 and a fully-pushed
// feed it is bit-identical to FitContext on the concatenated rows.
func (g *GradientBoosted) FitPaced(ctx context.Context, feed *Feed, pc PaceConfig) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if feed == nil {
		return errors.New("ml: paced fit needs a feed")
	}
	if pc.Groups <= 0 {
		return errors.New("ml: paced fit needs the total group count upfront")
	}
	ramp := pc.Ramp
	if ramp == 0 {
		ramp = 1.0 / 3
	}
	minRows := pc.MinRows
	if minRows <= 0 {
		minRows = 32
	}

	defer g.Config.Obs.WallTimer("ml.gbr.fit_seconds").Start()()
	g.Config.Obs.Counter("ml.gbr.fits").Inc()

	rng := rand.New(rand.NewSource(g.Config.Seed))
	g.trees = g.trees[:0]
	g.fitted = false

	var (
		X        [][]float64
		y        []float64
		pred     []float64
		residual []float64
		haveBase bool
		seen     int // rows already caught up in pred
		prevWant int
	)
	for stage := 0; stage < g.Config.NumStages; stage++ {
		if err := merr.FromContext(ctx, "ml: boosting canceled"); err != nil {
			return err
		}
		want := PaceSchedule(stage, g.Config.NumStages, pc.Groups, ramp)
		if want < prevWant {
			want = prevWant
		}
		for {
			gx, gy, got, err := feed.Rows(ctx, want)
			if err != nil {
				return err
			}
			if got < want {
				return fmt.Errorf("ml: feed closed after %d of %d groups", got, pc.Groups)
			}
			X, y = gx, gy
			if len(X) >= minRows || want >= pc.Groups {
				break
			}
			want++ // deterministic MinRows floor: widen the prefix
		}
		prevWant = want

		// The slot gate comes after the feed wait on purpose: holding a
		// shared worker slot while blocked on upstream simulation would
		// starve the very producers this stage is waiting for.
		release := func() {}
		if pc.Gate != nil {
			r, err := pc.Gate(ctx)
			if err != nil {
				return err
			}
			release = r
		}

		n := len(X)
		if !haveBase {
			if err := validate(X, y); err != nil {
				release()
				return err
			}
			var sum float64
			for _, v := range y {
				sum += v
			}
			g.base = sum / float64(n)
			g.importances = make([]float64, len(X[0]))
			haveBase = true
		}
		// Catch newly arrived rows up to the current ensemble. The
		// accumulation runs in tree order — the same float association an
		// incremental update would have used — so a row's prediction does
		// not depend on which stage it arrived at.
		for i := seen; i < n; i++ {
			p := g.base
			for _, t := range g.trees {
				p += g.Config.LearningRate * t.flat.Predict(X[i])
			}
			pred = append(pred, p)
		}
		seen = n

		for len(residual) < n {
			residual = append(residual, 0)
		}
		for i := 0; i < n; i++ {
			residual[i] = y[i] - pred[i]
		}
		bx, by := X, residual[:n]
		sampleSize := int(float64(n) * g.Config.Subsample)
		if sampleSize < 1 {
			sampleSize = 1
		}
		if sampleSize < n {
			idx := rng.Perm(n)[:sampleSize]
			bx = make([][]float64, sampleSize)
			by = make([]float64, sampleSize)
			for k, j := range idx {
				bx[k], by[k] = X[j], residual[j]
			}
		}
		tree := NewDecisionTree(TreeConfig{
			MaxDepth:       g.Config.MaxDepth,
			MinSamplesLeaf: g.Config.MinSamplesLeaf,
			Seed:           rng.Int63(),
		})
		if err := tree.Fit(bx, by); err != nil {
			release()
			return err
		}
		g.trees = append(g.trees, tree)
		for j, v := range tree.Importances() {
			g.importances[j] += v
		}
		parallelChunks(n, g.Config.Workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				pred[i] += g.Config.LearningRate * tree.flat.Predict(X[i])
			}
		})
		release()
	}
	if !haveBase {
		return errors.New("ml: empty training set")
	}
	var isum float64
	for _, v := range g.importances {
		isum += v
	}
	if isum > 0 {
		for i := range g.importances {
			g.importances[i] /= isum
		}
	}
	g.fitted = true
	g.flatMeta = nil
	compiled, err := compileGBR(g.base, g.Config.LearningRate, g.trees, g.Config.Workers)
	if err != nil {
		g.fitted = false
		return err
	}
	g.compiled = compiled
	return nil
}
