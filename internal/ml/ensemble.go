package ml

import (
	"context"
	"math/rand"

	"merchandiser/internal/merr"
	"merchandiser/internal/obs"
)

// ForestConfig configures a random forest (Table 3: n_estimators=20,
// max_depth=10).
type ForestConfig struct {
	NumTrees       int
	MaxDepth       int
	MinSamplesLeaf int
	// MaxFeatures per split; 0 means d/3 (the regression default).
	MaxFeatures int
	Seed        int64
	// Workers bounds how many trees are fitted (and how many prediction
	// row chunks run) concurrently; 0 uses runtime.NumCPU(). The fitted
	// model is identical for any value: bootstrap resamples and tree seeds
	// are drawn sequentially before the pool starts.
	Workers int
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 20
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	return c
}

// RandomForest bags variance-reduction trees over bootstrap resamples
// with per-split feature subsampling.
type RandomForest struct {
	Config ForestConfig

	trees       []*DecisionTree
	compiled    *CompiledForest
	importances []float64
	fitted      bool
	// flatMeta is retained by LoadFlat so a flat-restored forest (which
	// has no pointer trees) can still reproduce its JSON dump exactly.
	flatMeta *FlatMeta
}

// NewRandomForest builds an unfitted forest.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	return &RandomForest{Config: cfg.withDefaults()}
}

// Name implements Regressor.
func (f *RandomForest) Name() string { return "RFR" }

// Fit implements Regressor.
func (f *RandomForest) Fit(X [][]float64, y []float64) error {
	return f.FitContext(context.Background(), X, y)
}

// FitContext implements ContextFitter: workers stop claiming trees once
// ctx is done and the fit returns a canceled error without marking the
// model fitted. With a live context the trained forest is byte-identical
// to Fit.
func (f *RandomForest) FitContext(ctx context.Context, X [][]float64, y []float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validate(X, y); err != nil {
		return err
	}
	d := len(X[0])
	maxFeatures := f.Config.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = (d + 2) / 3
	}
	rng := rand.New(rand.NewSource(f.Config.Seed))
	f.trees = make([]*DecisionTree, f.Config.NumTrees)
	f.importances = make([]float64, d)
	n := len(X)
	// Draw every tree's bootstrap resample and split seed sequentially (in
	// the same rng order as a serial fit), then fit the trees on a worker
	// pool: the model is byte-identical for any Workers value.
	resampleX := make([][][]float64, f.Config.NumTrees)
	resampleY := make([][]float64, f.Config.NumTrees)
	seeds := make([]int64, f.Config.NumTrees)
	for t := range f.trees {
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i], by[i] = X[j], y[j]
		}
		resampleX[t], resampleY[t] = bx, by
		seeds[t] = rng.Int63()
	}
	errs := make([]error, f.Config.NumTrees)
	parallelChunks(f.Config.NumTrees, f.Config.Workers, func(lo, hi int) {
		for t := lo; t < hi && ctx.Err() == nil; t++ {
			tree := NewDecisionTree(TreeConfig{
				MaxDepth:       f.Config.MaxDepth,
				MinSamplesLeaf: f.Config.MinSamplesLeaf,
				MaxFeatures:    maxFeatures,
				Seed:           seeds[t],
			})
			if err := tree.Fit(resampleX[t], resampleY[t]); err != nil {
				errs[t] = err
				continue
			}
			f.trees[t] = tree
		}
	})
	if err := merr.FromContext(ctx, "ml: forest fit canceled"); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Accumulate importances in tree order so the float sums match a
	// serial fit exactly.
	for _, tree := range f.trees {
		for j, v := range tree.Importances() {
			f.importances[j] += v
		}
	}
	var sum float64
	for _, v := range f.importances {
		sum += v
	}
	if sum > 0 {
		for i := range f.importances {
			f.importances[i] /= sum
		}
	}
	f.fitted = true
	f.flatMeta = nil
	compiled, err := compileForest(f.trees, f.Config.Workers)
	if err != nil {
		f.fitted = false
		return err
	}
	f.compiled = compiled
	return nil
}

// Predict implements Regressor (mean of tree predictions) on the
// compiled node table; allocation-free.
func (f *RandomForest) Predict(x []float64) float64 {
	if !f.fitted {
		return 0
	}
	return f.compiled.Predict(x)
}

// PredictAll implements BatchRegressor through the compiled batch
// kernel: row chunks run concurrently, each chunk iterates trees in fit
// order over row blocks, so PredictAll(X)[i] == Predict(X[i])
// bit-for-bit while one tree's node table stays cache-hot per block.
func (f *RandomForest) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if !f.fitted {
		return out
	}
	f.compiled.predictAllInto(X, out, f.Config.Workers)
	return out
}

// predictPointer is the original pointer-walk accumulation, kept as the
// bit-identity reference for the compiled engine.
func (f *RandomForest) predictPointer(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.root.predict(x)
	}
	return s / float64(len(f.trees))
}

// Importances implements Importancer.
func (f *RandomForest) Importances() []float64 {
	return append([]float64(nil), f.importances...)
}

// GBRConfig configures gradient boosting (Table 3: base_estimator=DTR).
type GBRConfig struct {
	NumStages      int
	LearningRate   float64
	MaxDepth       int
	MinSamplesLeaf int
	// Subsample is the row fraction per stage (stochastic gradient
	// boosting); 1 uses all rows.
	Subsample float64
	Seed      int64
	// Workers bounds the concurrency of the per-stage residual update and
	// of PredictAll row chunks; 0 uses runtime.NumCPU(). Stages themselves
	// are inherently sequential, and each row's update is independent, so
	// the fitted model is identical for any value.
	Workers int
	// Obs, when non-nil, receives fit/predict counts plus wall-clock fit
	// and predict timers. The timers are volatile (excluded from
	// deterministic snapshots); the counts are deterministic.
	Obs *obs.Registry
}

func (c GBRConfig) withDefaults() GBRConfig {
	if c.NumStages <= 0 {
		c.NumStages = 150
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.08
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 1
	}
	return c
}

// GradientBoosted is least-squares gradient boosting: shallow CART trees
// fitted to residuals, shrunk by the learning rate. The paper selects it
// as Merchandiser's correlation function f(·).
type GradientBoosted struct {
	Config GBRConfig

	base        float64
	trees       []*DecisionTree
	compiled    *CompiledGBR
	importances []float64
	fitted      bool
	// flatMeta is retained by LoadFlat so a flat-restored model (which
	// has no pointer trees) can still reproduce its JSON dump exactly.
	flatMeta *FlatMeta
	// predictions is resolved once at construction so the per-call cost of
	// counting Predict/PredictAll rows is a nil check plus an atomic add.
	predictions *obs.Counter
}

// NewGradientBoosted builds an unfitted GBR.
func NewGradientBoosted(cfg GBRConfig) *GradientBoosted {
	cfg = cfg.withDefaults()
	return &GradientBoosted{Config: cfg, predictions: cfg.Obs.Counter("ml.gbr.predictions")}
}

// Name implements Regressor.
func (g *GradientBoosted) Name() string { return "GBR" }

// Fit implements Regressor.
func (g *GradientBoosted) Fit(X [][]float64, y []float64) error {
	return g.FitContext(context.Background(), X, y)
}

// FitContext implements ContextFitter: the context is checked between
// boosting stages, so cancellation aborts within one stage (one tree fit
// plus one residual pass) without marking the model fitted. With a live
// context the trained model is byte-identical to Fit.
func (g *GradientBoosted) FitContext(ctx context.Context, X [][]float64, y []float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validate(X, y); err != nil {
		return err
	}
	defer g.Config.Obs.WallTimer("ml.gbr.fit_seconds").Start()()
	g.Config.Obs.Counter("ml.gbr.fits").Inc()
	n := len(X)
	d := len(X[0])
	rng := rand.New(rand.NewSource(g.Config.Seed))

	var sum float64
	for _, v := range y {
		sum += v
	}
	g.base = sum / float64(n)
	g.importances = make([]float64, d)

	residual := make([]float64, n)
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = g.base
	}
	g.trees = g.trees[:0]
	sampleSize := int(float64(n) * g.Config.Subsample)
	if sampleSize < 1 {
		sampleSize = 1
	}
	for stage := 0; stage < g.Config.NumStages; stage++ {
		if err := merr.FromContext(ctx, "ml: boosting canceled"); err != nil {
			return err
		}
		for i := range residual {
			residual[i] = y[i] - pred[i]
		}
		bx, by := X, residual
		if sampleSize < n {
			idx := rng.Perm(n)[:sampleSize]
			bx = make([][]float64, sampleSize)
			by = make([]float64, sampleSize)
			for k, j := range idx {
				bx[k], by[k] = X[j], residual[j]
			}
		}
		tree := NewDecisionTree(TreeConfig{
			MaxDepth:       g.Config.MaxDepth,
			MinSamplesLeaf: g.Config.MinSamplesLeaf,
			Seed:           rng.Int63(),
		})
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		g.trees = append(g.trees, tree)
		for j, v := range tree.Importances() {
			g.importances[j] += v
		}
		// The residual update walks the new tree once per row through its
		// just-compiled table; rows are independent, so chunk them across
		// workers.
		parallelChunks(n, g.Config.Workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				pred[i] += g.Config.LearningRate * tree.flat.Predict(X[i])
			}
		})
	}
	var isum float64
	for _, v := range g.importances {
		isum += v
	}
	if isum > 0 {
		for i := range g.importances {
			g.importances[i] /= isum
		}
	}
	g.fitted = true
	g.flatMeta = nil
	compiled, err := compileGBR(g.base, g.Config.LearningRate, g.trees, g.Config.Workers)
	if err != nil {
		g.fitted = false
		return err
	}
	g.compiled = compiled
	return nil
}

// Predict implements Regressor on the compiled node table; aside from
// the observability counter it allocates nothing.
func (g *GradientBoosted) Predict(x []float64) float64 {
	if !g.fitted {
		return 0
	}
	g.predictions.Inc()
	return g.compiled.Predict(x)
}

// PredictAll implements BatchRegressor through the compiled batch
// kernel: row chunks run concurrently, each chunk accumulates the
// stages in fit order over row blocks, so PredictAll(X)[i] ==
// Predict(X[i]) bit-for-bit while one stage's node table stays
// cache-hot per block.
func (g *GradientBoosted) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if !g.fitted {
		return out
	}
	defer g.Config.Obs.WallTimer("ml.gbr.predict_seconds").Start()()
	g.predictions.Add(float64(len(X)))
	g.compiled.predictAllInto(X, out, g.Config.Workers)
	return out
}

// predictPointer is the original pointer-walk accumulation, kept as the
// bit-identity reference for the compiled engine.
func (g *GradientBoosted) predictPointer(x []float64) float64 {
	out := g.base
	for _, t := range g.trees {
		out += g.Config.LearningRate * t.root.predict(x)
	}
	return out
}

// Importances implements Importancer.
func (g *GradientBoosted) Importances() []float64 {
	return append([]float64(nil), g.importances...)
}
