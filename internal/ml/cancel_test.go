package ml

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"merchandiser/internal/merr"
)

func cancelTrainingData(n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(7))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = row[0]*2 - row[1]
	}
	return X, y
}

func TestGradientBoostedFitContextCanceled(t *testing.T) {
	X, y := cancelTrainingData(60, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gbr := NewGradientBoosted(GBRConfig{NumStages: 50, MaxDepth: 3, Seed: 1})
	err := gbr.FitContext(ctx, X, y)
	if !errors.Is(err, context.Canceled) || !errors.Is(err, merr.ErrCanceled) {
		t.Fatalf("want dual-matchable cancellation error, got %v", err)
	}
}

func TestRandomForestFitContextCanceled(t *testing.T) {
	X, y := cancelTrainingData(60, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rf := NewRandomForest(ForestConfig{NumTrees: 10, MaxDepth: 5, Seed: 1})
	err := rf.FitContext(ctx, X, y)
	if !errors.Is(err, context.Canceled) || !errors.Is(err, merr.ErrCanceled) {
		t.Fatalf("want dual-matchable cancellation error, got %v", err)
	}
}

func TestFitFallsBackToUpfrontCheck(t *testing.T) {
	X, y := cancelTrainingData(30, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// KNN has no FitContext; Fit must still honor the dead context.
	err := Fit(ctx, NewKNN(KNNConfig{K: 3}), X, y)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// And a live context trains normally.
	if err := Fit(context.Background(), NewKNN(KNNConfig{K: 3}), X, y); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValidateSubsetsCanceled(t *testing.T) {
	X, y := cancelTrainingData(40, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CrossValidateSubsetsObs(
		func() Regressor { return NewDecisionTree(TreeConfig{MaxDepth: 4}) },
		X, y,
		[]string{"a", "b", "c", "d"},
		[][]int{{0, 1}, {2, 3}, {0, 3}},
		CVOptions{Ctx: ctx, Folds: 3, Seed: 1, Workers: 2},
	)
	if !errors.Is(err, context.Canceled) || !errors.Is(err, merr.ErrCanceled) {
		t.Fatalf("want dual-matchable cancellation error, got %v", err)
	}
}

func TestFitContextBackgroundIdenticalToFit(t *testing.T) {
	X, y := cancelTrainingData(80, 3)
	a := NewGradientBoosted(GBRConfig{NumStages: 20, MaxDepth: 3, Seed: 5})
	b := NewGradientBoosted(GBRConfig{NumStages: 20, MaxDepth: 3, Seed: 5})
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.FitContext(context.Background(), X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := X[i]
		if a.Predict(x) != b.Predict(x) {
			t.Fatalf("Fit and FitContext(Background) diverged at row %d", i)
		}
	}
}
