package ml

import (
	"math/rand"
	"sort"
)

// TreeConfig configures a CART regression tree.
type TreeConfig struct {
	// MaxDepth bounds the tree depth (Table 3 uses max_depth=10).
	MaxDepth int
	// MinSamplesLeaf is the minimum number of samples in a leaf.
	MinSamplesLeaf int
	// MaxFeatures, when > 0, is the number of features considered per
	// split (random forests use d/3); 0 means all features.
	MaxFeatures int
	// Seed drives the feature subsampling.
	Seed int64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 2
	}
	return c
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64 // leaf prediction
	leaf      bool
}

// DecisionTree is a CART regression tree split on variance reduction —
// the regression form of the Gini criterion (Table 3: criterion=gini).
type DecisionTree struct {
	Config TreeConfig

	// root is the pointer tree built by Fit; it is the construction-time
	// and reference representation (nil for trees restored from a dump).
	root *treeNode
	// flat is the compiled node table every prediction goes through; it
	// exists for every fitted tree, whether fitted in-process or loaded.
	flat        *CompiledTree
	importances []float64
	rng         *rand.Rand
	fitted      bool
}

// NewDecisionTree builds an unfitted tree with cfg.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	return &DecisionTree{Config: cfg.withDefaults()}
}

// Name implements Regressor.
func (t *DecisionTree) Name() string { return "DTR" }

// Fit implements Regressor.
func (t *DecisionTree) Fit(X [][]float64, y []float64) error {
	if err := validate(X, y); err != nil {
		return err
	}
	t.rng = rand.New(rand.NewSource(t.Config.Seed))
	t.importances = make([]float64, len(X[0]))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, 0)
	// Normalize importances to sum to 1.
	var sum float64
	for _, v := range t.importances {
		sum += v
	}
	if sum > 0 {
		for i := range t.importances {
			t.importances[i] /= sum
		}
	}
	// Lower the pointer tree into the flat node table through the same
	// preorder flattening the serializer uses; from here on every
	// prediction walks the compiled layout (bit-identical by
	// construction — same comparisons, same order).
	var nodes []NodeDump
	dumpNode(t.root, &nodes)
	flat, err := compileDump(nodes)
	if err != nil {
		return err
	}
	t.flat = flat
	t.fitted = true
	return nil
}

// Predict implements Regressor; an unfitted tree predicts 0.
func (t *DecisionTree) Predict(x []float64) float64 {
	if !t.fitted {
		return 0
	}
	return t.flat.Predict(x)
}

// PredictAll implements BatchRegressor. A single tree walk is already
// cheap, so rows are evaluated in place without goroutines — ensemble
// callers parallelize at the row-chunk level instead.
func (t *DecisionTree) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if !t.fitted {
		return out
	}
	for i, x := range X {
		out[i] = t.flat.Predict(x)
	}
	return out
}

// predict is the pointer walk the compiled engine replaced. It is kept
// as the bit-identity reference: the differential tests and the
// BenchmarkPredictPointer baselines compare every compiled prediction
// against this walk.
func (n *treeNode) predict(x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Importances implements Importancer.
func (t *DecisionTree) Importances() []float64 {
	return append([]float64(nil), t.importances...)
}

// sse returns sum, sum of squares and count over the index set.
func sums(y []float64, idx []int) (s, s2 float64) {
	for _, i := range idx {
		s += y[i]
		s2 += y[i] * y[i]
	}
	return s, s2
}

func (t *DecisionTree) build(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	s, s2 := sums(y, idx)
	n := float64(len(idx))
	mean := s / n
	impurity := s2 - s*s/n // n * variance

	if depth >= t.Config.MaxDepth || len(idx) < 2*t.Config.MinSamplesLeaf || impurity <= 1e-12 {
		return &treeNode{leaf: true, value: mean}
	}

	d := len(X[0])
	features := t.candidateFeatures(d)

	bestGain := 0.0
	bestFeature := -1
	bestThreshold := 0.0
	// Reusable sorted index buffer.
	sorted := make([]int, len(idx))
	for _, f := range features {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return X[sorted[a]][f] < X[sorted[b]][f] })
		// Scan split points left to right maintaining prefix sums.
		var ls, ls2 float64
		for k := 0; k < len(sorted)-1; k++ {
			v := y[sorted[k]]
			ls += v
			ls2 += v * v
			// Can't split between equal feature values.
			if X[sorted[k]][f] == X[sorted[k+1]][f] {
				continue
			}
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < t.Config.MinSamplesLeaf || int(nr) < t.Config.MinSamplesLeaf {
				continue
			}
			rs := s - ls
			rs2 := s2 - ls2
			childImpurity := (ls2 - ls*ls/nl) + (rs2 - rs*rs/nr)
			gain := impurity - childImpurity
			if gain > bestGain {
				a, b := X[sorted[k]][f], X[sorted[k+1]][f]
				mid := a + (b-a)/2
				// Adjacent float values can round the midpoint up to b,
				// which would leave the right child empty; fall back to
				// the left value, which still separates (≤ a | > a).
				if mid >= b {
					mid = a
				}
				bestGain = gain
				bestFeature = f
				bestThreshold = mid
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, value: mean}
	}

	t.importances[bestFeature] += bestGain

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &treeNode{leaf: true, value: mean}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      t.build(X, y, leftIdx, depth+1),
		right:     t.build(X, y, rightIdx, depth+1),
	}
}

func (t *DecisionTree) candidateFeatures(d int) []int {
	if t.Config.MaxFeatures <= 0 || t.Config.MaxFeatures >= d {
		all := make([]int, d)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return t.rng.Perm(d)[:t.Config.MaxFeatures]
}
