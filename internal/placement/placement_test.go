package placement

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"merchandiser/internal/hm"
	"merchandiser/internal/model"
	"merchandiser/internal/pmc"
)

// linearModel is a PerfModel with no correlation function: pure linear
// interpolation between the bounds, which makes expected outcomes easy to
// compute by hand.
func linearModel() *model.PerfModel { return &model.PerfModel{} }

func task(name string, tPm, tDram, acc float64, pages uint64) TaskInput {
	return TaskInput{
		Name: name, TPmOnly: tPm, TDramOnly: tDram,
		TotalAccesses: acc, FootprintPages: pages,
		Events: pmc.Counters{Values: map[string]float64{}},
	}
}

func TestGreedyBalancesTwoUnevenTasks(t *testing.T) {
	tasks := []TaskInput{
		task("slow", 10, 2, 1e6, 1000),
		task("fast", 4, 1, 1e6, 1000),
	}
	// Capacity for 60% of the combined footprints: the slow task must be
	// served first and receive more DRAM than the fast one.
	plan, err := GreedyLoadBalance(tasks, 1200, linearModel(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.DRAMAccesses[0] <= plan.DRAMAccesses[1] {
		t.Fatalf("slow task got %v accesses, fast got %v", plan.DRAMAccesses[0], plan.DRAMAccesses[1])
	}
	if plan.PredictedMakespan() >= 9 {
		t.Fatalf("makespan %v barely improved", plan.PredictedMakespan())
	}
	// Predicted times should end up close to each other (load balance).
	if math.Abs(plan.Predicted[0]-plan.Predicted[1]) > 2.5 {
		t.Fatalf("unbalanced prediction: %v", plan.Predicted)
	}
	// With unlimited capacity every task is eventually fully granted.
	unbounded, err := GreedyLoadBalance(tasks, 1<<40, linearModel(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range unbounded.GoalRatio {
		if r < 0.999 {
			t.Fatalf("task %d goal ratio %v under unlimited capacity, want 1", i, r)
		}
	}
}

func TestGreedyRespectsCapacity(t *testing.T) {
	tasks := []TaskInput{
		task("a", 10, 2, 1e6, 1000),
		task("b", 9, 2, 1e6, 1000),
		task("c", 8, 2, 1e6, 1000),
	}
	const dc = 500
	plan, err := GreedyLoadBalance(tasks, dc, linearModel(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, p := range plan.DRAMPages {
		total += p
	}
	if total > dc {
		t.Fatalf("plan uses %d pages, capacity %d", total, dc)
	}
}

func TestGreedyNeverWorsensPredictedMakespan(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seed := int64(seedRaw)
		tasks := []TaskInput{
			task("a", 5+float64(seed%7), 1, 1e6, 500),
			task("b", 3+float64(seed%5), 1, 2e6, 800),
			task("c", 8, 2, 5e5, 300),
		}
		before := 0.0
		for _, tk := range tasks {
			if tk.TPmOnly > before {
				before = tk.TPmOnly
			}
		}
		plan, err := GreedyLoadBalance(tasks, uint64(100*(seed+1)), linearModel(), Config{})
		if err != nil {
			return false
		}
		return plan.PredictedMakespan() <= before+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGreedySingleTask(t *testing.T) {
	tasks := []TaskInput{task("only", 10, 2, 1e6, 1000)}
	plan, err := GreedyLoadBalance(tasks, 10000, linearModel(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A lone task should be pushed toward DRAM-only.
	if plan.GoalRatio[0] < 0.95 {
		t.Fatalf("single task goal ratio = %v, want ~1", plan.GoalRatio[0])
	}
	if plan.PredictedMakespan() > 2.5 {
		t.Fatalf("single task makespan = %v, want near DRAM-only (2)", plan.PredictedMakespan())
	}
}

func TestGreedyValidation(t *testing.T) {
	if _, err := GreedyLoadBalance(nil, 100, linearModel(), Config{}); err == nil {
		t.Fatal("empty tasks should error")
	}
	bad := []TaskInput{task("x", 0, 0, 1e6, 10)}
	if _, err := GreedyLoadBalance(bad, 100, linearModel(), Config{}); err == nil {
		t.Fatal("zero times should error")
	}
	inverted := []TaskInput{task("x", 2, 5, 1e6, 10)}
	if _, err := GreedyLoadBalance(inverted, 100, linearModel(), Config{}); err == nil {
		t.Fatal("DRAM slower than PM should error")
	}
}

func TestGreedyStepGranularity(t *testing.T) {
	tasks := []TaskInput{
		task("a", 10, 2, 1e6, 1000),
		task("b", 9.9, 2, 1e6, 1000),
	}
	coarse, err := GreedyLoadBalance(tasks, 2000, linearModel(), Config{Step: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := GreedyLoadBalance(tasks, 2000, linearModel(), Config{Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Finer steps can only do as well or better on predicted makespan.
	if fine.PredictedMakespan() > coarse.PredictedMakespan()+1e-9 {
		t.Fatalf("fine step (%v) worse than coarse (%v)",
			fine.PredictedMakespan(), coarse.PredictedMakespan())
	}
}

func TestGreedyNearOptimalOnSmallInstances(t *testing.T) {
	tasks := []TaskInput{
		task("a", 10, 3, 1e6, 100),
		task("b", 6, 2, 1e6, 100),
		task("c", 4, 1.5, 1e6, 100),
	}
	const dc = 120
	plan, err := GreedyLoadBalance(tasks, dc, linearModel(), Config{Step: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := KnapsackReference(tasks, dc, linearModel(), 25)
	if plan.PredictedMakespan() > opt*1.15 {
		t.Fatalf("greedy makespan %v vs optimal %v: gap too large",
			plan.PredictedMakespan(), opt)
	}
}

func TestGateEnforcesGoals(t *testing.T) {
	tasks := []TaskInput{
		task("a", 10, 2, 1e6, 1000),
		task("b", 4, 1, 1e6, 1000),
	}
	plan, err := GreedyLoadBalance(tasks, 100000, linearModel(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGate(tasks, plan)
	mem := hm.NewMemory(hm.DefaultSpec())
	objA, _ := mem.Alloc("A", "a", 4096, hm.PM)
	objB, _ := mem.Alloc("B", "b", 4096, hm.PM)
	objShared, _ := mem.Alloc("S", "", 4096, hm.PM)

	// Before any achievement report, everything under a positive goal is
	// allowed.
	if plan.GoalRatio[0] > 0 && !g.Allows(objA) {
		t.Fatal("task under goal should be allowed")
	}
	// Report task a at goal, task b far below.
	g.Update([]hm.TaskStatus{
		{Name: "a", RDRAM: plan.GoalRatio[0] + 0.01},
		{Name: "b", RDRAM: 0},
	})
	if g.Allows(objA) {
		t.Fatal("task at goal must be gated")
	}
	if plan.GoalRatio[1] > 0 && !g.Allows(objB) {
		t.Fatal("task under goal must pass")
	}
	if !g.Allows(objShared) {
		t.Fatal("ownerless object must pass")
	}
	if g.Allows(nil) {
		t.Fatal("nil object must not pass")
	}
	// Unknown owner passes (no goal constrains it).
	objX, _ := mem.Alloc("X", "stranger", 4096, hm.PM)
	if !g.Allows(objX) {
		t.Fatal("unknown owner should pass")
	}
}

func TestMapToPages(t *testing.T) {
	in := task("a", 10, 2, 1000, 100)
	if got := mapToPages(in, 500); got != 50 {
		t.Fatalf("mapToPages = %d, want 50", got)
	}
	if got := mapToPages(in, 2000); got != 100 {
		t.Fatalf("over-goal should clamp to footprint, got %d", got)
	}
	if got := mapToPages(task("z", 1, 0.5, 0, 100), 10); got != 0 {
		t.Fatalf("zero accesses should map to zero pages, got %d", got)
	}
}

// referenceGreedy is the pre-optimization Algorithm 1 (full usedPages
// rescan every round, no prediction memo), kept as the oracle for the
// incremental-sum and memoization rewrite: plans must be unchanged.
func referenceGreedy(tasks []TaskInput, dc uint64, perf *model.PerfModel, cfg Config) *Plan {
	cfg = cfg.withDefaults()
	n := len(tasks)
	plan := &Plan{
		DRAMAccesses: make([]float64, n),
		GoalRatio:    make([]float64, n),
		DRAMPages:    make([]uint64, n),
		Predicted:    make([]float64, n),
	}
	for i, t := range tasks {
		plan.Predicted[i] = t.TPmOnly
	}
	usedPages := func() uint64 {
		var s uint64
		for _, p := range plan.DRAMPages {
			s += p
		}
		return s
	}
	predict := func(i int, dramAcc float64) float64 {
		t := tasks[i]
		r := 0.0
		if t.TotalAccesses > 0 {
			r = dramAcc / t.TotalAccesses
		}
		return perf.Predict(t.TPmOnly, t.TDramOnly, t.Events, r)
	}
	full := make([]bool, n)
	for round := 0; round < cfg.MaxRounds; round++ {
		longest := -1
		for i := 0; i < n; i++ {
			if full[i] {
				continue
			}
			if longest < 0 || plan.Predicted[i] > plan.Predicted[longest] {
				longest = i
			}
		}
		if longest < 0 {
			break
		}
		secondT := 0.0
		for i := 0; i < n; i++ {
			if i != longest && plan.Predicted[i] > secondT {
				secondT = plan.Predicted[i]
			}
		}
		if n == 1 {
			secondT = tasks[0].TDramOnly
		}
		t := tasks[longest]
		dramAcc := plan.DRAMAccesses[longest]
		for {
			dramAcc += cfg.Step * t.TotalAccesses
			if dramAcc >= t.TotalAccesses {
				dramAcc = t.TotalAccesses
				full[longest] = true
			}
			plan.Predicted[longest] = predict(longest, dramAcc)
			if plan.Predicted[longest] <= secondT || full[longest] {
				break
			}
		}
		newPages := mapToPages(t, dramAcc)
		oldPages := plan.DRAMPages[longest]
		others := usedPages() - oldPages
		if others+newPages > dc {
			fit := uint64(0)
			if dc > others {
				fit = dc - others
			}
			if fit > oldPages {
				plan.DRAMPages[longest] = fit
				if t.FootprintPages > 0 {
					frac := float64(fit) / float64(t.FootprintPages)
					if frac > 1 {
						frac = 1
					}
					plan.DRAMAccesses[longest] = frac * t.TotalAccesses
				}
			}
			plan.Predicted[longest] = predict(longest, plan.DRAMAccesses[longest])
			plan.Rounds = round + 1
			break
		}
		plan.DRAMAccesses[longest] = dramAcc
		plan.DRAMPages[longest] = newPages
		plan.Rounds = round + 1
	}
	for i, t := range tasks {
		if t.TotalAccesses > 0 {
			plan.GoalRatio[i] = plan.DRAMAccesses[i] / t.TotalAccesses
		}
	}
	return plan
}

// TestGreedyMatchesReferenceImplementation pins the memoized/incremental
// GreedyLoadBalance to the original algorithm on randomized instances.
func TestGreedyMatchesReferenceImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	perf := linearModel()
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		tasks := make([]TaskInput, n)
		var footprint uint64
		for i := range tasks {
			tDram := 0.5 + rng.Float64()*2
			pages := uint64(100 + rng.Intn(4000))
			footprint += pages
			tasks[i] = task(
				string(rune('a'+i)),
				tDram*(1.05+rng.Float64()*4), tDram,
				float64(1+rng.Intn(10))*1e6, pages,
			)
		}
		dc := uint64(rng.Int63n(int64(footprint) + 1))
		got, err := GreedyLoadBalance(tasks, dc, perf, Config{})
		if err != nil {
			t.Fatal(err)
		}
		want := referenceGreedy(tasks, dc, perf, Config{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d dc=%d): plans diverged\ngot:  %+v\nwant: %+v", trial, n, dc, got, want)
		}
	}
}
