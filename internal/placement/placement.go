// Package placement implements Merchandiser's load-balance-aware
// fast-memory partitioning (Section 6):
//
//   - Algorithm 1, the greedy heuristic that repeatedly grants the
//     predicted-slowest task 5% more DRAM accesses until it drops below
//     the second slowest, until DRAM capacity is exhausted;
//   - an exact dynamic-programming knapsack reference for small instances,
//     used by tests to bound the heuristic's gap (the paper formulates the
//     underlying problem as a knapsack and argues NP-hardness);
//   - the migration gate that makes the MemoryOptimizer-style daemon
//     load-balance aware: pages of a task that already reached its DRAM
//     access goal are not migrated.
package placement

import (
	"fmt"
	"math"
	"sort"

	"merchandiser/internal/hm"
	"merchandiser/internal/model"
	"merchandiser/internal/obs"
	"merchandiser/internal/pmc"
)

// TaskInput is one task's model inputs for Algorithm 1.
type TaskInput struct {
	Name string
	// Tenant names the co-scheduled application the task belongs to ("" in
	// single-tenant runs). Planners respect per-tenant DRAM quotas via
	// Constraints.TenantQuota / Config.TenantQuota.
	Tenant string
	// TPmOnly is D_i, the predicted PM-only execution time of the task
	// with the upcoming input.
	TPmOnly float64
	// TDramOnly is the predicted DRAM-only time (Equation 2 needs both
	// bounds).
	TDramOnly float64
	// Events are the task's workload characteristics (PCs_i), collected
	// once with the base input.
	Events pmc.Counters
	// TotalAccesses is Total_Acc_i, the estimated number of main-memory
	// accesses of the upcoming instance (Equation 1 output, summed over
	// the task's data objects).
	TotalAccesses float64
	// FootprintPages is the number of memory pages holding the task's
	// data objects, for MAP_TO_PAGES.
	FootprintPages uint64
	// Objects, when provided, refines MAP_TO_PAGES with Merchandiser's
	// per-object access estimates (Equation 1): the page cost of a DRAM
	// access goal is computed by filling the densest objects first,
	// instead of Algorithm 1's uniform-distribution assumption (Line 18).
	// Empty Objects falls back to the paper's uniform mapping.
	Objects []ObjectLoad
}

// ObjectLoad is one data object's share of a task's estimated main-memory
// accesses and its page count.
type ObjectLoad struct {
	Name     string
	Accesses float64
	Pages    uint64
}

// Plan is Algorithm 1's output.
type Plan struct {
	// DRAMAccesses is DRAM_Acc_i per task.
	DRAMAccesses []float64
	// GoalRatio is DRAM_Acc_i / Total_Acc_i per task — what the migration
	// gate enforces.
	GoalRatio []float64
	// DRAMPages is DC_i, the per-task page budget (MAP_TO_PAGES).
	DRAMPages []uint64
	// Predicted is D'_i, the predicted execution time after migration.
	Predicted []float64
	// Rounds is how many outer iterations the algorithm ran.
	Rounds int
}

// PredictedMakespan returns the slowest predicted task time.
func (p *Plan) PredictedMakespan() float64 {
	m := 0.0
	for _, t := range p.Predicted {
		if t > m {
			m = t
		}
	}
	return m
}

// Config tunes Algorithm 1.
type Config struct {
	// Step is the DRAM-access increment per inner iteration as a fraction
	// of the task's total accesses; the paper uses 5%.
	Step float64
	// MaxRounds bounds the outer loop defensively.
	MaxRounds int
	// Obs, when non-nil, receives planner metrics: rounds, per-round grant
	// ratio deltas, memoized-prediction hit rates and the predicted
	// makespan. Deterministic for identical inputs.
	Obs *obs.Registry
	// TenantQuota caps the summed page grants of each tenant's tasks;
	// tenants absent from the map are unconstrained. Nil (the default)
	// disables quota clamping entirely.
	TenantQuota map[string]uint64
}

func (c Config) withDefaults() Config {
	if c.Step <= 0 {
		c.Step = 0.05
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 10000
	}
	return c
}

// mapToPages converts a task's DRAM access goal into a page budget.
// Without per-object loads it uses Algorithm 1's uniform-distribution
// assumption (Line 18). With them, it fills the densest objects first —
// a page-cost model consistent with what the migration daemon actually
// achieves, since hot-page ranking migrates dense objects first.
func mapToPages(in TaskInput, dramAcc float64) uint64 {
	if in.TotalAccesses <= 0 {
		return 0
	}
	frac := dramAcc / in.TotalAccesses
	if frac > 1 {
		frac = 1
	}
	if len(in.Objects) == 0 {
		return uint64(math.Ceil(frac * float64(in.FootprintPages)))
	}
	objs := append([]ObjectLoad(nil), in.Objects...)
	sort.Slice(objs, func(a, b int) bool {
		da, db := density(objs[a]), density(objs[b])
		if da != db {
			return da > db
		}
		return objs[a].Name < objs[b].Name
	})
	need := frac * in.TotalAccesses
	var pages uint64
	for _, o := range objs {
		if need <= 0 {
			break
		}
		if o.Accesses <= need {
			pages += o.Pages
			need -= o.Accesses
			continue
		}
		pages += uint64(math.Ceil(need / o.Accesses * float64(o.Pages)))
		need = 0
	}
	if pages > in.FootprintPages {
		pages = in.FootprintPages
	}
	return pages
}

func density(o ObjectLoad) float64 {
	if o.Pages == 0 {
		return 0
	}
	return o.Accesses / float64(o.Pages)
}

// accessesForPages inverts mapToPages' uniform mapping: the DRAM access
// goal a given page budget supports (Algorithm 1's Line 18 read
// backwards, as the capacity clamp already does).
func accessesForPages(t TaskInput, pages uint64) float64 {
	if t.FootprintPages == 0 || t.TotalAccesses <= 0 {
		return 0
	}
	frac := float64(pages) / float64(t.FootprintPages)
	if frac > 1 {
		frac = 1
	}
	return frac * t.TotalAccesses
}

// predictMemo caches performance-model predictions for one plan
// construction. The model is deterministic in (task, r_dram), and keys
// quantize the ratio to its exact float64 bits, so a cache hit returns the
// identical value a fresh perf.Predict call would — plans are unchanged,
// only the repeated forest walks disappear.
type predictMemo struct {
	tasks []TaskInput
	perf  *model.PerfModel
	cache map[predictKey]float64
	// requests/hits/misses count prediction lookups for the memo-hit-rate
	// metric; requests == hits + misses is an observed invariant the
	// property tests assert.
	requests, hits, misses *obs.Counter
}

type predictKey struct {
	task  int
	rbits uint64
}

func newPredictMemo(tasks []TaskInput, perf *model.PerfModel, reg *obs.Registry) *predictMemo {
	// Pre-size for a handful of distinct ratios per task so the common case
	// never rehashes.
	return &predictMemo{
		tasks:    tasks,
		perf:     perf,
		cache:    make(map[predictKey]float64, 8*len(tasks)),
		requests: reg.Counter("placement.predictions"),
		hits:     reg.Counter("placement.memo.hits"),
		misses:   reg.Counter("placement.memo.misses"),
	}
}

// predict converts a DRAM access goal into a ratio and returns the cached
// prediction for it.
func (m *predictMemo) predict(i int, dramAcc float64) float64 {
	t := m.tasks[i]
	r := 0.0
	if t.TotalAccesses > 0 {
		r = dramAcc / t.TotalAccesses
	}
	return m.predictRatio(i, r)
}

func (m *predictMemo) predictRatio(i int, r float64) float64 {
	m.requests.Inc()
	key := predictKey{task: i, rbits: math.Float64bits(r)}
	if v, ok := m.cache[key]; ok {
		m.hits.Inc()
		return v
	}
	m.misses.Inc()
	t := m.tasks[i]
	v := m.perf.Predict(t.TPmOnly, t.TDramOnly, t.Events, r)
	m.cache[key] = v
	return v
}

// warmEndpoints seeds the memo with every task's r=0 and r=1
// predictions from one PredictBatch call: the bisection planner probes
// both endpoints for every candidate makespan, and the batch form runs
// the compiled model's block kernel — each tree's node table is walked
// for a whole block of rows at a time instead of once per task. Batch
// predictions are bit-identical to pointwise ones, so seeded entries
// change nothing but the walk count.
func (m *predictMemo) warmEndpoints() {
	n := len(m.tasks)
	tPm := make([]float64, 0, 2*n)
	tDram := make([]float64, 0, 2*n)
	evs := make([]pmc.Counters, 0, 2*n)
	ratios := make([]float64, 0, 2*n)
	for _, r := range []float64{0, 1} {
		for i := range m.tasks {
			t := &m.tasks[i]
			tPm = append(tPm, t.TPmOnly)
			tDram = append(tDram, t.TDramOnly)
			evs = append(evs, t.Events)
			ratios = append(ratios, r)
		}
	}
	preds := m.perf.PredictBatch(tPm, tDram, evs, ratios)
	for k, v := range preds {
		i := k % n
		m.cache[predictKey{task: i, rbits: math.Float64bits(ratios[k])}] = v
	}
}

// GreedyLoadBalance is Algorithm 1. It returns the per-task DRAM access
// goals that (predictedly) minimize the makespan within the DRAM capacity
// dc (in pages), using the performance model for Line 15's prediction.
func GreedyLoadBalance(tasks []TaskInput, dc uint64, perf *model.PerfModel, cfg Config) (*Plan, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("placement: no tasks")
	}
	cfg = cfg.withDefaults()
	for i, t := range tasks {
		if t.TPmOnly <= 0 || t.TotalAccesses < 0 {
			return nil, fmt.Errorf("placement: task %d (%s) has invalid inputs: tPm=%v acc=%v",
				i, t.Name, t.TPmOnly, t.TotalAccesses)
		}
		if t.TDramOnly <= 0 || t.TDramOnly > t.TPmOnly {
			return nil, fmt.Errorf("placement: task %d (%s) has invalid DRAM-only time %v (PM-only %v)",
				i, t.Name, t.TDramOnly, t.TPmOnly)
		}
	}

	n := len(tasks)
	plan := &Plan{
		DRAMAccesses: make([]float64, n),
		GoalRatio:    make([]float64, n),
		DRAMPages:    make([]uint64, n),
		Predicted:    make([]float64, n),
	}
	for i, t := range tasks {
		plan.Predicted[i] = t.TPmOnly // D'_i ← D_i
	}

	// used maintains sum(plan.DRAMPages) incrementally: every grant updates
	// one task's page budget, so a full rescan per round is wasted work.
	var used uint64
	// Algorithm 1 revisits the same (task, r_dram) pairs across rounds —
	// every round re-predicts the incumbent at its current grant, and 5%
	// steps land on a small grid of ratios. Predictions are deterministic,
	// so memoize them per plan, keyed on the exact ratio bits (a lossless
	// quantization: equal ratios share a key, different ratios never do).
	memo := newPredictMemo(tasks, perf, cfg.Obs)
	predict := memo.predict
	// ratioDelta observes the per-round grant growth as a fraction of the
	// incumbent's total accesses; one Step per inner iteration, so the
	// distribution shows how many 5% steps each round needed.
	ratioDelta := cfg.Obs.HistogramBuckets("placement.ratio_delta",
		[]float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1})

	// full marks tasks whose DRAM access goal reached 100%.
	full := make([]bool, n)
	// tenantUsed tracks per-tenant page sums when quotas are configured
	// (nil otherwise — the quota-free path is untouched).
	var tenantUsed map[string]uint64
	if len(cfg.TenantQuota) > 0 {
		tenantUsed = map[string]uint64{}
	}
	for round := 0; round < cfg.MaxRounds; round++ {
		// Line 10: pick the longest predicted task that can still grow.
		longest := -1
		for i := 0; i < n; i++ {
			if full[i] {
				continue
			}
			if longest < 0 || plan.Predicted[i] > plan.Predicted[longest] {
				longest = i
			}
		}
		if longest < 0 {
			break // every task fully granted
		}
		// Line 11: second-longest among all tasks.
		secondT := 0.0
		for i := 0; i < n; i++ {
			if i != longest && plan.Predicted[i] > secondT {
				secondT = plan.Predicted[i]
			}
		}
		if n == 1 {
			secondT = tasks[0].TDramOnly // a lone task improves until DRAM-only
		}

		t := tasks[longest]
		dramAcc := plan.DRAMAccesses[longest]
		prevAcc := dramAcc

		// Lines 13-16 (do-while): grow this task's DRAM accesses by 5%
		// steps until it is no longer the bottleneck (or fully granted).
		for {
			dramAcc += cfg.Step * t.TotalAccesses
			if dramAcc >= t.TotalAccesses {
				dramAcc = t.TotalAccesses
				full[longest] = true
			}
			plan.Predicted[longest] = predict(longest, dramAcc)
			if plan.Predicted[longest] <= secondT || full[longest] {
				break
			}
		}

		// Line 19: respect DRAM capacity; clamp the final grant to fit.
		newPages := mapToPages(t, dramAcc)
		oldPages := plan.DRAMPages[longest]
		others := used - oldPages

		// Per-tenant quota clamp: a task whose tenant's budget is exhausted
		// is treated as fully granted (it stops growing), but other tenants'
		// tasks keep competing — unlike the capacity clamp below, which
		// ends the whole algorithm.
		if tenantUsed != nil {
			if q, ok := cfg.TenantQuota[t.Tenant]; ok {
				tOthers := tenantUsed[t.Tenant] - oldPages
				if tOthers+newPages > q {
					fit := uint64(0)
					if q > tOthers {
						fit = q - tOthers
					}
					if fit < oldPages {
						fit = oldPages
					}
					newPages = fit
					dramAcc = accessesForPages(t, newPages)
					if dramAcc < prevAcc {
						dramAcc = prevAcc
					}
					plan.Predicted[longest] = predict(longest, dramAcc)
					full[longest] = true
				}
			}
		}
		if others+newPages > dc {
			fit := uint64(0)
			if dc > others {
				fit = dc - others
			}
			if fit > oldPages {
				plan.DRAMPages[longest] = fit
				used = others + fit
				if t.FootprintPages > 0 {
					frac := float64(fit) / float64(t.FootprintPages)
					if frac > 1 {
						frac = 1
					}
					plan.DRAMAccesses[longest] = frac * t.TotalAccesses
				}
			}
			plan.Predicted[longest] = predict(longest, plan.DRAMAccesses[longest])
			plan.Rounds = round + 1
			if t.TotalAccesses > 0 {
				ratioDelta.Observe((plan.DRAMAccesses[longest] - prevAcc) / t.TotalAccesses)
			}
			break // Line 19: DRAM capacity exhausted
		}
		plan.DRAMAccesses[longest] = dramAcc
		plan.DRAMPages[longest] = newPages
		used = others + newPages
		if tenantUsed != nil {
			tenantUsed[t.Tenant] = tenantUsed[t.Tenant] - oldPages + newPages
		}
		plan.Rounds = round + 1
		if t.TotalAccesses > 0 {
			ratioDelta.Observe((dramAcc - prevAcc) / t.TotalAccesses)
		}
	}

	for i, t := range tasks {
		if t.TotalAccesses > 0 {
			plan.GoalRatio[i] = plan.DRAMAccesses[i] / t.TotalAccesses
		}
	}
	if reg := cfg.Obs; reg != nil {
		reg.Counter("placement.plans").Inc()
		reg.Counter("placement.rounds").Add(float64(plan.Rounds))
		reg.Gauge("placement.predicted_makespan").Set(plan.PredictedMakespan())
	}
	return plan, nil
}

// Gate makes page migration load-balance aware (Section 6, "Page
// migration"): before the daemon migrates a hot page to DRAM, it asks the
// gate whether the tasks that access that page still need more DRAM
// accesses — plural, as the paper states: a page serving several tasks
// stays migratable while any of them is under its goal.
type Gate struct {
	// GoalRatio maps task name to its DRAM access-ratio goal from
	// Algorithm 1.
	GoalRatio map[string]float64
	// Achieved maps task name to its currently achieved DRAM access
	// ratio (engine TaskStatus.RDRAM); updated each tick.
	Achieved map[string]float64
	// Accessors maps object name to the tasks accessing it this
	// instance. Objects absent from the map fall back to their owner.
	Accessors map[string][]string
}

// NewGate builds a gate from a plan.
func NewGate(tasks []TaskInput, plan *Plan) *Gate {
	g := &Gate{GoalRatio: map[string]float64{}, Achieved: map[string]float64{}}
	for i, t := range tasks {
		g.GoalRatio[t.Name] = plan.GoalRatio[i]
	}
	return g
}

// Update records the current per-task achieved ratios.
func (g *Gate) Update(tasks []hm.TaskStatus) {
	for _, ts := range tasks {
		g.Achieved[ts.Name] = ts.RDRAM
	}
}

// underGoal reports whether the named task still wants DRAM accesses.
// Unknown tasks are unconstrained.
func (g *Gate) underGoal(task string) bool {
	goal, ok := g.GoalRatio[task]
	if !ok {
		return true
	}
	return g.Achieved[task] < goal
}

// Allows reports whether a page of obj may be migrated to DRAM: yes while
// any task accessing the object is under its goal. Ownerless objects with
// no recorded accessors are always allowed.
func (g *Gate) Allows(obj *hm.Object) bool {
	if obj == nil {
		return false
	}
	if acc, ok := g.Accessors[obj.Name]; ok {
		for _, t := range acc {
			if g.underGoal(t) {
				return true
			}
		}
		return false
	}
	if obj.Owner == "" {
		return true
	}
	return g.underGoal(obj.Owner)
}

// Constraints bounds a plan: the total DRAM capacity plus optional
// per-tenant page quotas for multi-tenant co-scheduling.
type Constraints struct {
	// CapacityPages is the DRAM capacity dc available to the plan.
	CapacityPages uint64
	// TenantQuota caps the summed page grants of each tenant's tasks;
	// tenants absent from the map are unconstrained. Nil disables the
	// per-tenant checks entirely (the single-tenant fast path).
	TenantQuota map[string]uint64
}

// MinMakespanPlan computes a near-optimal partition by binary search over
// the achievable makespan: for a candidate time T, each task's minimum
// DRAM grant to get its prediction under T is found by monotone bisection
// (Equation 2 is non-increasing in r_dram), and T is feasible when the
// grants fit the capacity. The paper's artifact lists "dynamic programming
// and greedy heuristic" as its key algorithms; this is the
// exact-within-tolerance counterpart used to audit Algorithm 1's gap.
func MinMakespanPlan(tasks []TaskInput, dc uint64, perf *model.PerfModel, tol float64) (*Plan, error) {
	return MinMakespanPlanConstrained(tasks, Constraints{CapacityPages: dc}, perf, tol)
}

// MinMakespanPlanConstrained is MinMakespanPlan under explicit
// Constraints: a candidate makespan is feasible only if the minimum
// grants fit the total capacity AND every tenant's summed grant fits its
// quota. Raising T only shrinks grants, so feasibility stays monotone and
// the same bisection applies. With no quotas configured the result is
// identical to MinMakespanPlan.
func MinMakespanPlanConstrained(tasks []TaskInput, cons Constraints, perf *model.PerfModel, tol float64) (*Plan, error) {
	dc := cons.CapacityPages
	if len(tasks) == 0 {
		return nil, fmt.Errorf("placement: no tasks")
	}
	if tol <= 0 {
		tol = 1e-3
	}
	for i, t := range tasks {
		if t.TPmOnly <= 0 || t.TDramOnly <= 0 || t.TDramOnly > t.TPmOnly {
			return nil, fmt.Errorf("placement: task %d (%s) has invalid bounds", i, t.Name)
		}
	}
	// The bisections revisit the endpoints and nearby ratios for every
	// candidate T; the same per-plan memo that serves Algorithm 1 removes
	// those repeated model walks, and the endpoint predictions every
	// feasibility probe starts from are precomputed in one pass through
	// the compiled model's batch kernel.
	memo := newPredictMemo(tasks, perf, nil)
	memo.warmEndpoints()
	predict := memo.predictRatio
	// Minimum DRAM ratio for task i to be predicted at or under T
	// (+inf pages when even r = 1 cannot reach T).
	minRatioFor := func(i int, T float64) (float64, bool) {
		if predict(i, 0) <= T {
			return 0, true
		}
		if predict(i, 1) > T {
			return 1, false
		}
		lo, hi := 0.0, 1.0
		for hi-lo > 1e-4 {
			mid := (lo + hi) / 2
			if predict(i, mid) <= T {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi, true
	}
	pagesFor := func(i int, r float64) uint64 {
		return mapToPages(tasks[i], r*tasks[i].TotalAccesses)
	}
	feasible := func(T float64) ([]float64, bool) {
		ratios := make([]float64, len(tasks))
		var total uint64
		var perTenant map[string]uint64
		if len(cons.TenantQuota) > 0 {
			perTenant = make(map[string]uint64, len(cons.TenantQuota))
		}
		for i := range tasks {
			r, ok := minRatioFor(i, T)
			if !ok {
				return nil, false
			}
			ratios[i] = r
			p := pagesFor(i, r)
			total += p
			if total > dc {
				return nil, false
			}
			if perTenant != nil {
				if q, has := cons.TenantQuota[tasks[i].Tenant]; has {
					perTenant[tasks[i].Tenant] += p
					if perTenant[tasks[i].Tenant] > q {
						return nil, false
					}
				}
			}
		}
		return ratios, true
	}

	// Search between the best case (everything at DRAM speed) and the
	// worst (everything on PM).
	lo, hi := 0.0, 0.0
	for _, t := range tasks {
		if t.TDramOnly > lo {
			lo = t.TDramOnly
		}
		if t.TPmOnly > hi {
			hi = t.TPmOnly
		}
	}
	bestRatios, ok := feasible(hi)
	if !ok {
		// Even PM-only should be feasible (zero pages); defensive.
		bestRatios = make([]float64, len(tasks))
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if r, ok := feasible(mid); ok {
			bestRatios = r
			hi = mid
		} else {
			lo = mid
		}
	}

	plan := &Plan{
		DRAMAccesses: make([]float64, len(tasks)),
		GoalRatio:    append([]float64(nil), bestRatios...),
		DRAMPages:    make([]uint64, len(tasks)),
		Predicted:    make([]float64, len(tasks)),
	}
	for i := range tasks {
		plan.DRAMAccesses[i] = bestRatios[i] * tasks[i].TotalAccesses
		plan.DRAMPages[i] = pagesFor(i, bestRatios[i])
		plan.Predicted[i] = predict(i, bestRatios[i])
	}
	return plan, nil
}

// KnapsackReference solves the fast-memory partitioning exactly for small
// instances by dynamic programming over page grants, minimizing the
// predicted makespan. Exponential-ish in resolution; tests only.
func KnapsackReference(tasks []TaskInput, dc uint64, perf *model.PerfModel, granularity int) (float64, []uint64) {
	if granularity <= 0 {
		granularity = 20
	}
	n := len(tasks)
	// Each task may receive 0..granularity shares of its footprint.
	best := math.Inf(1)
	var bestAlloc []uint64
	alloc := make([]uint64, n)
	var rec func(i int, remaining uint64)
	rec = func(i int, remaining uint64) {
		if i == n {
			makespan := 0.0
			for j, t := range tasks {
				r := 0.0
				if t.FootprintPages > 0 {
					r = float64(alloc[j]) / float64(t.FootprintPages)
				}
				pred := perf.Predict(t.TPmOnly, t.TDramOnly, t.Events, r)
				if pred > makespan {
					makespan = pred
				}
			}
			if makespan < best {
				best = makespan
				bestAlloc = append([]uint64(nil), alloc...)
			}
			return
		}
		t := tasks[i]
		for g := 0; g <= granularity; g++ {
			pages := uint64(float64(t.FootprintPages) * float64(g) / float64(granularity))
			if pages > remaining {
				break
			}
			alloc[i] = pages
			rec(i+1, remaining-pages)
		}
		alloc[i] = 0
	}
	rec(0, dc)
	return best, bestAlloc
}
