package placement

import (
	"merchandiser/internal/hm"
)

// ResidualProgress is one task's observed mid-run state, used to shrink a
// plan's TaskInputs down to the work that remains.
type ResidualProgress struct {
	// Done is the task's completed fraction of its planned main-memory
	// accesses, in [0, 1].
	Done float64
	// Correction is the observed-over-predicted slowdown factor for the
	// task so far (1 = running exactly as the plan predicted, 2 = taking
	// twice as long). Values <= 0 are treated as 1. Scaling the time
	// bounds by it folds the observed drift into the residual plan, which
	// is what lets re-planning react to phase shifts the offline profile
	// never saw.
	Correction float64
}

// minResidual keeps a finished task's residual inputs valid (planners
// require strictly positive time bounds) while making its remaining work
// small enough that any planner grants it effectively nothing.
const minResidual = 1e-6

// ResidualInputs scales each task's inputs to its remaining work:
// predicted time bounds and total accesses shrink by the undone fraction,
// time bounds additionally stretch by the observed correction factor, and
// per-object access estimates shrink proportionally. Footprints are
// unchanged — the task's pages stay resident until it finishes, so the
// page cost of a DRAM-access goal is what it always was. The result is
// index-aligned with tasks (finished tasks degrade to minResidual rather
// than being dropped), so plan slots keep matching task slots.
func ResidualInputs(tasks []TaskInput, prog []ResidualProgress) []TaskInput {
	out := make([]TaskInput, len(tasks))
	for i, t := range tasks {
		rem := 1.0
		corr := 1.0
		if i < len(prog) {
			rem = 1 - prog[i].Done
			if prog[i].Correction > 0 {
				corr = prog[i].Correction
			}
		}
		if rem < minResidual {
			rem = minResidual
		}
		if rem > 1 {
			rem = 1
		}
		rt := t
		rt.TPmOnly = t.TPmOnly * rem * corr
		rt.TDramOnly = t.TDramOnly * rem * corr
		rt.TotalAccesses = t.TotalAccesses * rem
		if len(t.Objects) > 0 {
			rt.Objects = make([]ObjectLoad, len(t.Objects))
			for j, o := range t.Objects {
				o.Accesses *= rem
				rt.Objects[j] = o
			}
		}
		out[i] = rt
	}
	return out
}

// MigrationCost estimates the simulated seconds needed to move pages
// between tiers: page bytes over the migration share of PM's bandwidth
// (a migration is charged to both tiers' pools, and PM is the narrower
// pipe, so it bounds the drain rate). Re-planning charges this cost
// against a new plan's projected makespan win before applying it.
func MigrationCost(movedPages uint64, spec hm.SystemSpec) float64 {
	if movedPages == 0 {
		return 0
	}
	bw := spec.BytesPerSecond(hm.PM) * spec.MigrationShare
	if bw <= 0 {
		return 0
	}
	return float64(movedPages) * float64(spec.PageSize) / bw
}
