package placement

import (
	"fmt"
	"math/rand"
	"testing"

	"merchandiser/internal/ml"
	"merchandiser/internal/model"
	"merchandiser/internal/pmc"
)

// trainedModel fits a small GBR on synthetic Equation 2 targets so the
// benchmarks pay a realistic (forest-walk) cost per prediction.
func trainedModel(b *testing.B) *model.PerfModel {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		ev := rng.Float64()
		r := rng.Float64()
		X = append(X, []float64{ev, r})
		y = append(y, 0.6+0.4*ev*(1-r))
	}
	gbr := ml.NewGradientBoosted(ml.GBRConfig{NumStages: 150, MaxDepth: 4, Seed: 1})
	if err := gbr.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	return &model.PerfModel{Corr: &model.CorrelationFunc{Model: gbr, Events: []string{"EV"}}}
}

func benchTasks(n int) []TaskInput {
	tasks := make([]TaskInput, n)
	for i := range tasks {
		tasks[i] = TaskInput{
			Name: fmt.Sprintf("t%03d", i), TPmOnly: 2 + float64(i%7), TDramOnly: 1,
			TotalAccesses: 1e7, FootprintPages: 2000,
			Events: pmc.Counters{Values: map[string]float64{"EV": float64(i%5) / 5}},
		}
	}
	return tasks
}

func BenchmarkGreedyLoadBalanceTrained(b *testing.B) {
	perf := trainedModel(b)
	tasks := benchTasks(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyLoadBalance(tasks, 12000, perf, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinMakespanPlan(b *testing.B) {
	perf := trainedModel(b)
	tasks := benchTasks(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinMakespanPlan(tasks, 12000, perf, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
