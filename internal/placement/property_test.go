package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"merchandiser/internal/hm"
)

// TestMapToPagesMonotone: more granted accesses never cost fewer pages,
// and the cost never exceeds the footprint — with and without the
// density-aware object loads.
func TestMapToPagesMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := task("x", 10, 2, 1e6, 1000)
		if rng.Intn(2) == 0 {
			// Density-aware variant with 3 skewed objects.
			in.Objects = []ObjectLoad{
				{Name: "hot", Accesses: 7e5, Pages: 100},
				{Name: "warm", Accesses: 2e5, Pages: 400},
				{Name: "cold", Accesses: 1e5, Pages: 500},
			}
		}
		prev := uint64(0)
		for acc := 0.0; acc <= 1e6; acc += 5e4 {
			p := mapToPages(in, acc)
			if p < prev || p > in.FootprintPages {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDensityAwareCheaperForSkewedObjects: reaching the same access goal
// must never cost MORE pages under density-aware mapping than under the
// uniform assumption.
func TestDensityAwareCheaperForSkewedObjects(t *testing.T) {
	uniform := task("x", 10, 2, 1e6, 1000)
	dense := uniform
	dense.Objects = []ObjectLoad{
		{Name: "hot", Accesses: 9e5, Pages: 100}, // 90% of accesses in 10% of pages
		{Name: "cold", Accesses: 1e5, Pages: 900},
	}
	for _, frac := range []float64{0.25, 0.5, 0.9} {
		acc := frac * 1e6
		u := mapToPages(uniform, acc)
		d := mapToPages(dense, acc)
		if d > u {
			t.Fatalf("at %.0f%% goal: density-aware costs %d pages, uniform %d", frac*100, d, u)
		}
	}
	// Hitting 90% of accesses should cost about the hot object's pages.
	if got := mapToPages(dense, 9e5); got > 150 {
		t.Fatalf("90%% goal should cost ~100 pages (the hot object), got %d", got)
	}
}

// TestGreedyPlanInvariants: for random task sets, the plan never exceeds
// capacity, goals stay in [0,1], and predictions stay within the
// [TDram, TPm] physical bounds.
func TestGreedyPlanInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		tasks := make([]TaskInput, n)
		for i := range tasks {
			tPm := 1 + rng.Float64()*10
			tasks[i] = task("t", tPm, tPm*(0.2+0.5*rng.Float64()), 1e5+rng.Float64()*1e7,
				uint64(100+rng.Intn(2000)))
			tasks[i].Name = string(rune('a' + i))
		}
		dc := uint64(rng.Intn(4000))
		plan, err := GreedyLoadBalance(tasks, dc, linearModel(), Config{})
		if err != nil {
			return false
		}
		var total uint64
		for i := range tasks {
			total += plan.DRAMPages[i]
			if plan.GoalRatio[i] < 0 || plan.GoalRatio[i] > 1+1e-9 {
				return false
			}
			if plan.Predicted[i] < tasks[i].TDramOnly-1e-9 || plan.Predicted[i] > tasks[i].TPmOnly+1e-9 {
				return false
			}
		}
		return total <= dc || dc == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyServesSlowestFirst: the first pages always go to the task
// with the longest predicted time.
func TestGreedyServesSlowestFirst(t *testing.T) {
	tasks := []TaskInput{
		task("fast", 3, 1, 1e6, 1000),
		task("slow", 12, 2, 1e6, 1000),
		task("mid", 7, 1.5, 1e6, 1000),
	}
	// Capacity for only one 5% step's worth of pages.
	plan, err := GreedyLoadBalance(tasks, 60, linearModel(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.DRAMPages[1] == 0 {
		t.Fatalf("slowest task got nothing: %v", plan.DRAMPages)
	}
	if plan.DRAMPages[0] != 0 {
		t.Fatalf("fastest task served before the bottleneck: %v", plan.DRAMPages)
	}
}

// TestGateUpdateOverwrites: achieved ratios track the latest status.
func TestGateUpdateOverwrites(t *testing.T) {
	g := &Gate{GoalRatio: map[string]float64{"a": 0.5}, Achieved: map[string]float64{}}
	g.Update([]hm.TaskStatus{{Name: "a", RDRAM: 0.2}})
	if !g.underGoal("a") {
		t.Fatal("0.2 < 0.5 should be under goal")
	}
	g.Update([]hm.TaskStatus{{Name: "a", RDRAM: 0.6}})
	if g.underGoal("a") {
		t.Fatal("0.6 >= 0.5 should be at goal")
	}
	if !g.underGoal("unknown") {
		t.Fatal("unknown tasks are unconstrained")
	}
}

// TestGateAccessorPrecedence: accessor lists take precedence over the
// owner when both are present.
func TestGateAccessorPrecedence(t *testing.T) {
	mem := hm.NewMemory(hm.DefaultSpec())
	shared, _ := mem.Alloc("S", "ownerAtGoal", 4096, hm.PM)
	g := &Gate{
		GoalRatio: map[string]float64{"ownerAtGoal": 0.1, "needy": 0.9},
		Achieved:  map[string]float64{"ownerAtGoal": 0.5, "needy": 0.1},
		Accessors: map[string][]string{"S": {"ownerAtGoal", "needy"}},
	}
	if !g.Allows(shared) {
		t.Fatal("page must stay migratable while any accessor is under goal")
	}
	g.Accessors["S"] = []string{"ownerAtGoal"}
	if g.Allows(shared) {
		t.Fatal("page should be gated once every accessor reached its goal")
	}
	// Without accessor info, fall back to the owner.
	delete(g.Accessors, "S")
	if g.Allows(shared) {
		t.Fatal("owner at goal should gate the page")
	}
}

func TestMinMakespanPlanOptimality(t *testing.T) {
	tasks := []TaskInput{
		task("a", 10, 3, 1e6, 100),
		task("b", 6, 2, 1e6, 100),
		task("c", 4, 1.5, 1e6, 100),
	}
	const dc = 120
	opt, err := MinMakespanPlan(tasks, dc, linearModel(), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	brute, _ := KnapsackReference(tasks, dc, linearModel(), 40)
	if opt.PredictedMakespan() > brute*1.03 {
		t.Fatalf("binary-search plan %v worse than brute force %v", opt.PredictedMakespan(), brute)
	}
	// And it must never lose to the greedy.
	greedy, err := GreedyLoadBalance(tasks, dc, linearModel(), Config{Step: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if opt.PredictedMakespan() > greedy.PredictedMakespan()*1.02 {
		t.Fatalf("optimal plan %v worse than greedy %v", opt.PredictedMakespan(), greedy.PredictedMakespan())
	}
	// Capacity respected.
	var total uint64
	for _, p := range opt.DRAMPages {
		total += p
	}
	if total > dc {
		t.Fatalf("plan uses %d pages of %d", total, dc)
	}
}

func TestMinMakespanPlanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		tasks := make([]TaskInput, n)
		for i := range tasks {
			tPm := 1 + rng.Float64()*9
			tasks[i] = task("t", tPm, tPm*(0.2+0.6*rng.Float64()), 1e6, uint64(100+rng.Intn(900)))
			tasks[i].Name = string(rune('a' + i))
		}
		dc := uint64(rng.Intn(3000))
		opt, err := MinMakespanPlan(tasks, dc, linearModel(), 1e-3)
		if err != nil {
			return false
		}
		greedy, err := GreedyLoadBalance(tasks, dc, linearModel(), Config{})
		if err != nil {
			return false
		}
		// The audited bound: greedy within 20% of optimal on these
		// instances, optimal never worse than greedy.
		if opt.PredictedMakespan() > greedy.PredictedMakespan()*1.02 {
			return false
		}
		return greedy.PredictedMakespan() <= opt.PredictedMakespan()*1.2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMakespanPlanValidation(t *testing.T) {
	if _, err := MinMakespanPlan(nil, 10, linearModel(), 0); err == nil {
		t.Fatal("empty tasks accepted")
	}
	bad := []TaskInput{task("x", 2, 5, 1e6, 10)}
	if _, err := MinMakespanPlan(bad, 10, linearModel(), 0); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}
