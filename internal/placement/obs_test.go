package placement

import (
	"math/rand"
	"testing"

	"merchandiser/internal/obs"
)

// TestPlannerMetricsInvariants checks the planner's observed identities
// over randomized instances: every prediction is either a memo hit or a
// miss, the rounds counter mirrors Plan.Rounds, and the recorded predicted
// makespan matches the plan's.
func TestPlannerMetricsInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		tasks := make([]TaskInput, n)
		for i := range tasks {
			tPm := 1 + 9*rng.Float64()
			tasks[i] = task(string(rune('a'+i)), tPm, tPm*(0.2+0.5*rng.Float64()),
				1e6*(1+rng.Float64()), 500+uint64(rng.Intn(1500)))
		}
		reg := obs.New()
		dc := uint64(200 + rng.Intn(4000))
		plan, err := GreedyLoadBalance(tasks, dc, linearModel(), Config{Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot(false)
		preds := snap.Counters["placement.predictions"]
		hits := snap.Counters["placement.memo.hits"]
		misses := snap.Counters["placement.memo.misses"]
		if preds == 0 {
			t.Fatalf("seed %d: no predictions recorded", seed)
		}
		if hits+misses != preds {
			t.Fatalf("seed %d: hits %v + misses %v != predictions %v", seed, hits, misses, preds)
		}
		if got := snap.Counters["placement.rounds"]; got != float64(plan.Rounds) {
			t.Fatalf("seed %d: rounds counter %v, plan ran %d", seed, got, plan.Rounds)
		}
		if got := snap.Counters["placement.plans"]; got != 1 {
			t.Fatalf("seed %d: plans counter %v", seed, got)
		}
		if got := snap.Gauges["placement.predicted_makespan"].Value; got != plan.PredictedMakespan() {
			t.Fatalf("seed %d: predicted makespan gauge %v != %v", seed, got, plan.PredictedMakespan())
		}
		h, ok := snap.Histograms["placement.ratio_delta"]
		if !ok || h.Count == 0 {
			t.Fatalf("seed %d: no ratio-delta observations", seed)
		}
		if uint64(plan.Rounds) != h.Count {
			t.Fatalf("seed %d: %d rounds but %d ratio deltas", seed, plan.Rounds, h.Count)
		}
	}
}

// TestPlannerNilRegistryUnchanged verifies that observing a plan does not
// change it: with and without a registry, the outputs are identical.
func TestPlannerNilRegistryUnchanged(t *testing.T) {
	tasks := []TaskInput{
		task("slow", 10, 2, 1e6, 1000),
		task("fast", 4, 1, 1e6, 1000),
	}
	bare, err := GreedyLoadBalance(tasks, 1200, linearModel(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := GreedyLoadBalance(tasks, 1200, linearModel(), Config{Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if bare.PredictedMakespan() != observed.PredictedMakespan() || bare.Rounds != observed.Rounds {
		t.Fatalf("observation changed the plan: %+v vs %+v", bare, observed)
	}
	for i := range bare.DRAMAccesses {
		if bare.DRAMAccesses[i] != observed.DRAMAccesses[i] || bare.DRAMPages[i] != observed.DRAMPages[i] {
			t.Fatalf("task %d grants differ under observation", i)
		}
	}
}
