package merchandiser_test

import (
	"context"
	"fmt"

	"merchandiser"
)

// ExampleAppBuilder defines a two-task application declaratively and runs
// it under Merchandiser.
func ExampleAppBuilder() {
	spec := merchandiser.DefaultSpec()
	spec.Tiers[merchandiser.DRAM].CapacityBytes = 4 << 20
	spec.Tiers[merchandiser.PM].CapacityBytes = 32 << 20
	spec.LLCBytes = 128 << 10

	sys, err := merchandiser.NewSystem(spec, merchandiser.TrainNone)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	app, err := (&merchandiser.AppBuilder{
		AppName: "example",
		Objects: []merchandiser.ObjectDef{
			{Name: "big", Owner: "worker", Bytes: 8 << 20},
		},
		Tasks: []merchandiser.TaskDef{{
			Name: "worker",
			Phases: []merchandiser.PhaseDef{{
				Name: "scan", ComputeSeconds: 0.01,
				Accesses: []merchandiser.AccessDef{{
					Object:          "big",
					Pattern:         merchandiser.Pattern{Kind: merchandiser.Stream, ElemSize: 8},
					ProgramAccesses: 5e7,
				}},
			}},
		}},
		Instances: 2,
	}).Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := sys.Run(context.Background(), app, sys.Merchandiser(), merchandiser.Options{StepSec: 0.001})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("instances:", len(res.Instances))
	// Output: instances: 2
}

// ExampleClassifyTrace recognizes a streaming pattern from a recorded
// access trace — the workflow when source code is unavailable.
func ExampleClassifyTrace() {
	rec := merchandiser.NewTraceRecorder()
	region, _ := rec.Alloc("array", 1<<20)
	for i := uint64(0); i < 1000; i++ {
		rec.Touch(region, i*8, false)
	}
	for _, c := range merchandiser.ClassifyTrace(rec, 8) {
		fmt.Println(c.Region, c.Pattern.Kind)
	}
	// Output: array Stream
}
