package merchandiser

import (
	"context"
	"fmt"
	"runtime"

	"merchandiser/internal/access"
	"merchandiser/internal/corpus"
	"merchandiser/internal/hm"
	"merchandiser/internal/merr"
	"merchandiser/internal/ml"
	"merchandiser/internal/model"
	"merchandiser/internal/pmc"
	"merchandiser/internal/store"
)

// TrainConfig tunes System construction — the paper's offline training
// pipeline (corpus generation + correlation-function fitting).
type TrainConfig struct {
	// Level selects the corpus scale (TrainQuick, TrainFull, TrainNone).
	Level TrainLevel
	// Workers bounds the concurrency of corpus simulation and model
	// fitting; 0 uses runtime.NumCPU(). The trained system is identical
	// for any value: every code region and tree seed is derived from Seed,
	// not from scheduling.
	Workers int
	// Seed drives corpus generation and the train/test split (default 1,
	// the value NewSystem has always used).
	Seed int64
}

// NewSystemConfig builds a System with explicit training knobs. It is the
// configurable form of NewSystem: NewSystemConfig(ctx, spec,
// TrainConfig{Level: level}) with a background ctx is equivalent to
// NewSystem(spec, level). Cancel ctx to abort training mid-corpus or
// mid-boosting; the error satisfies errors.Is(err, context.Canceled).
func NewSystemConfig(ctx context.Context, spec SystemSpec, cfg TrainConfig) (*System, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	s := &System{
		Spec: spec,
		Perf: &model.PerfModel{},
		Meta: SystemMeta{Seed: cfg.Seed, Level: cfg.Level.String()},
	}
	if cfg.Level == TrainNone {
		return s, nil
	}
	nRegions, placements := 80, 6
	if cfg.Level == TrainFull {
		nRegions, placements = 281, 10
	}
	trainSpec := spec
	// Train on a compact memory footprint: f depends on workload
	// characteristics and r_dram, not on absolute capacity.
	trainSpec.Tiers[hm.DRAM].CapacityBytes = 64 << 20
	trainSpec.Tiers[hm.PM].CapacityBytes = 512 << 20
	trainSpec.LLCBytes = 1 << 20
	regions := corpus.StandardCorpus(nRegions, cfg.Seed)
	// Training runs pipelined: corpus simulation streams per-region
	// batches into the boosting fitter, with one slot pool of Workers
	// permits bounding both stages together. Outputs are byte-identical
	// for any worker count — region seeds, the per-region split and the
	// pace schedule all derive from Seed and data layout, never timing.
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	slots := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		slots <- struct{}{}
	}
	gate := func(ctx context.Context) (func(), error) {
		select {
		case <-slots:
			return func() { slots <- struct{}{} }, nil
		case <-ctx.Done():
			return nil, merr.FromContext(ctx, "merchandiser: training canceled")
		}
	}
	stream := corpus.BuildStream(ctx, regions, trainSpec, corpus.BuildConfig{
		Placements: placements, StepSec: 0.001, Seed: cfg.Seed, Workers: workers, Gate: gate,
	})
	gbr := ml.NewGradientBoosted(ml.GBRConfig{Seed: cfg.Seed, Workers: workers})
	res, samples, err := model.TrainCorrelationStream(ctx, stream.C, stream.Wait, pmc.SelectedEvents, gbr,
		ml.PaceConfig{Groups: len(regions), Gate: gate}, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("merchandiser: training f(·): %w", err)
	}
	s.Perf = &model.PerfModel{Corr: res.Corr}
	s.TrainedR2 = res.TestR2
	s.Meta.Samples = res.Samples
	X, _ := corpus.Matrix(samples, pmc.SelectedEvents)
	s.Meta.Stats = store.StatsFromMatrix(corpus.FeatureNames(pmc.SelectedEvents), X)
	return s, nil
}

// Pattern re-exports the access-pattern descriptor for app builders.
type Pattern = access.Pattern

// Pattern kinds, re-exported.
const (
	Stream  = access.Stream
	Strided = access.Strided
	Stencil = access.Stencil
	Random  = access.Random
)

// ObjectDef declares one data object of a built app. This plays the role
// of the paper's LB_HM_config call: it tells the runtime which objects to
// manage and how large they are.
type ObjectDef struct {
	Name  string
	Owner string // owning task name, "" for shared objects
	Bytes uint64
}

// AccessDef declares one access stream of a task phase.
type AccessDef struct {
	Object          string
	Pattern         Pattern
	ProgramAccesses float64
	WriteFrac       float64
}

// PhaseDef declares one phase of a task.
type PhaseDef struct {
	Name           string
	ComputeSeconds float64
	Accesses       []AccessDef
}

// TaskDef declares one task.
type TaskDef struct {
	Name   string
	Phases []PhaseDef
}

// InstanceScaler adjusts a task's work per instance; it receives the
// instance index and returns a multiplier applied to object sizes is NOT
// supported (objects are fixed) — the multiplier scales program accesses
// and compute, modeling input variation at fixed footprint.
type InstanceScaler func(instance int, taskName string) float64

// AppBuilder declaratively assembles an App from object and task
// definitions — the quickest way to put a custom workload on the
// simulator (see examples/customapp).
type AppBuilder struct {
	AppName   string
	Objects   []ObjectDef
	Tasks     []TaskDef
	Instances int
	// Scale, when non-nil, varies per-task work across instances
	// (default: constant 1).
	Scale InstanceScaler
}

// Build validates the definition and returns an App.
func (b *AppBuilder) Build() (App, error) {
	if b.AppName == "" {
		return nil, merr.Errorf(merr.ErrBadApp, "merchandiser: app needs a name")
	}
	if len(b.Objects) == 0 || len(b.Tasks) == 0 {
		return nil, merr.Errorf(merr.ErrBadApp, "merchandiser: app %q needs objects and tasks", b.AppName)
	}
	if b.Instances <= 0 {
		return nil, merr.Errorf(merr.ErrBadApp, "merchandiser: app %q needs a positive instance count", b.AppName)
	}
	names := map[string]bool{}
	for _, o := range b.Objects {
		if o.Bytes == 0 {
			return nil, merr.Errorf(merr.ErrBadApp, "merchandiser: object %q has zero size", o.Name)
		}
		if names[o.Name] {
			return nil, merr.Errorf(merr.ErrBadApp, "merchandiser: duplicate object %q", o.Name)
		}
		names[o.Name] = true
	}
	for _, t := range b.Tasks {
		for _, ph := range t.Phases {
			for _, a := range ph.Accesses {
				if !names[a.Object] {
					return nil, merr.Errorf(merr.ErrBadApp, "merchandiser: task %q references unknown object %q", t.Name, a.Object)
				}
				if err := a.Pattern.Validate(); err != nil {
					return nil, merr.Wrap(merr.ErrBadApp, fmt.Sprintf("merchandiser: task %q", t.Name), err)
				}
			}
		}
	}
	return &builtApp{def: b}, nil
}

type builtApp struct {
	def  *AppBuilder
	objs map[string]*hm.Object
}

func (a *builtApp) Name() string      { return a.def.AppName }
func (a *builtApp) NumInstances() int { return a.def.Instances }

func (a *builtApp) Setup(mem *Memory) error {
	a.objs = map[string]*hm.Object{}
	for _, od := range a.def.Objects {
		o, err := mem.Alloc(od.Name, od.Owner, od.Bytes, hm.PM)
		if err != nil {
			return err
		}
		a.objs[od.Name] = o
	}
	return nil
}

func (a *builtApp) Instance(i int, mem *Memory) ([]TaskWork, error) {
	var works []TaskWork
	for _, td := range a.def.Tasks {
		scale := 1.0
		if a.def.Scale != nil {
			scale = a.def.Scale(i, td.Name)
			if scale <= 0 {
				return nil, fmt.Errorf("merchandiser: scale for task %q instance %d is %v", td.Name, i, scale)
			}
		}
		tw := TaskWork{Name: td.Name}
		for _, pd := range td.Phases {
			ph := Phase{Name: pd.Name, ComputeSeconds: pd.ComputeSeconds * scale}
			for ai, ad := range pd.Accesses {
				ph.Accesses = append(ph.Accesses, PhaseAccess{
					Obj:             a.objs[ad.Object],
					Pattern:         ad.Pattern,
					ProgramAccesses: ad.ProgramAccesses * scale,
					WriteFrac:       ad.WriteFrac,
					Seed:            int64(ai + 1),
				})
			}
			tw.Phases = append(tw.Phases, ph)
		}
		works = append(works, tw)
	}
	return works, nil
}
