package merchandiser

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"merchandiser/internal/ml"
	"merchandiser/internal/model"
	"merchandiser/internal/placement"
	"merchandiser/internal/pmc"
)

// formatSnapshot snapshots sys in the given format and returns the bytes.
func formatSnapshot(t *testing.T, sys *System, f SaveFormat) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.SnapshotFormat(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// bitIdenticalPlans asserts two systems produce Float64bits-identical
// MinMakespanPlan output on the standard probe.
func bitIdenticalPlans(t *testing.T, want, got *System, label string) {
	t.Helper()
	dc := want.Spec.CapacityPages(DRAM)
	wp, err := placement.MinMakespanPlan(planProbe(), dc, want.Perf, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := placement.MinMakespanPlan(planProbe(), dc, got.Perf, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wp, gp) {
		t.Fatalf("%s: MinMakespanPlan differs:\n%+v\nvs\n%+v", label, wp, gp)
	}
	for i := range wp.Predicted {
		if math.Float64bits(wp.Predicted[i]) != math.Float64bits(gp.Predicted[i]) {
			t.Fatalf("%s: predicted time %d not bit-identical", label, i)
		}
	}
}

// TestSaveFormatsServeIdentically is the differential acceptance test
// for the binary artifact format: the same trained system saved as
// json, binary, and both must restore to systems whose Compare and
// MinMakespanPlan outputs are byte-identical — and the binary restore
// must be provably free of training, JSON node decoding and
// re-compilation (obs counters flat).
func TestSaveFormatsServeIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a quick corpus")
	}
	sys, err := NewSystem(testSpec(), TrainQuick)
	if err != nil {
		t.Fatal(err)
	}
	jsonBytes := formatSnapshot(t, sys, SaveJSON)
	binBytes := formatSnapshot(t, sys, SaveBinary)
	bothBytes := formatSnapshot(t, sys, SaveBoth)
	if bytes.Equal(jsonBytes, binBytes) {
		t.Fatal("binary snapshot encodes identically to JSON; the format knob is dead")
	}

	// JSON restore pays the re-compile and says so on the registry.
	regJSON := NewObserver()
	fromJSON, err := Restore(context.Background(), bytes.NewReader(jsonBytes), WithObserver(regJSON))
	if err != nil {
		t.Fatal(err)
	}
	if got := regJSON.Snapshot(true).Counters["ml.compiles"]; got != 1 {
		t.Fatalf("JSON restore recorded %v compiles, want 1", got)
	}

	// Binary restore does zero training work AND zero compile work: the
	// fit counter is zero and the compile counter/timer never register.
	regBin := NewObserver()
	fromBin, err := Restore(context.Background(), bytes.NewReader(binBytes), WithObserver(regBin))
	if err != nil {
		t.Fatal(err)
	}
	snap := regBin.Snapshot(true)
	if got := snap.Counters["ml.gbr.fits"]; got != 0 {
		t.Fatalf("binary restore recorded %v fits, want 0", got)
	}
	if _, ok := snap.Counters["ml.compiles"]; ok {
		t.Fatal("binary restore recorded a compile; the flat path must not re-compile")
	}
	if _, ok := snap.Timers["ml.compile_seconds"]; ok {
		t.Fatal("binary restore started the compile timer")
	}

	fromBoth, err := Restore(context.Background(), bytes.NewReader(bothBytes))
	if err != nil {
		t.Fatal(err)
	}

	// All three restores serve bit-identical plans.
	bitIdenticalPlans(t, sys, fromJSON, "json")
	bitIdenticalPlans(t, sys, fromBin, "binary")
	bitIdenticalPlans(t, sys, fromBoth, "both")
	if regBin.Counter("ml.gbr.predictions").Value() == 0 {
		t.Fatal("binary-restored model predictions not observed")
	}

	// And byte-identical Compare output (the full-simulation check, run
	// once against the binary restore — the format under test).
	app := buildTestApp(t, 3)
	opts := Options{StepSec: 0.001, IntervalSec: 0.02}
	want, err := sys.Compare(context.Background(), app, opts, sys.PMOnly(), sys.Merchandiser())
	if err != nil {
		t.Fatal(err)
	}
	got, err := fromBin.Compare(context.Background(), buildTestApp(t, 3), opts, fromBin.PMOnly(), fromBin.Merchandiser())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("Compare output differs through the binary format")
	}

	// Cross-format re-encode stability: the binary-restored system must
	// reproduce BOTH formats' original bytes (binary→json→binary and
	// json→binary→json are closed loops), and the JSON-restored system
	// must reproduce the binary bytes.
	if !bytes.Equal(formatSnapshot(t, fromBin, SaveBinary), binBytes) {
		t.Fatal("binary re-snapshot of a binary-restored system is not byte-identical")
	}
	if !bytes.Equal(formatSnapshot(t, fromBin, SaveJSON), jsonBytes) {
		t.Fatal("JSON re-snapshot of a binary-restored system is not byte-identical")
	}
	if !bytes.Equal(formatSnapshot(t, fromJSON, SaveBinary), binBytes) {
		t.Fatal("binary re-snapshot of a JSON-restored system is not byte-identical")
	}
	if !bytes.Equal(formatSnapshot(t, fromBoth, SaveBoth), bothBytes) {
		t.Fatal("both re-snapshot of a both-restored system is not byte-identical")
	}
}

// TestSaveFormatForest runs the same differential loop over a
// forest-model system (built directly, no corpus training) so both
// ensemble kinds cross the binary boundary in the corpus of tested
// systems.
func TestSaveFormatForest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := len(pmc.SelectedEvents) + 1
	X := make([][]float64, 150)
	y := make([]float64, len(X))
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = 0.2 + 0.6*row[0] + 0.3*row[1]*row[2]
	}
	f := ml.NewRandomForest(ml.ForestConfig{NumTrees: 5, MaxDepth: 5, Seed: 13})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	sys := &System{
		Spec:      testSpec(),
		Perf:      &model.PerfModel{Corr: &model.CorrelationFunc{Model: f, Events: append([]string(nil), pmc.SelectedEvents...)}},
		TrainedR2: 0.5,
	}
	jsonBytes := formatSnapshot(t, sys, SaveJSON)
	binBytes := formatSnapshot(t, sys, SaveBinary)
	fromJSON, err := Restore(context.Background(), bytes.NewReader(jsonBytes))
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Restore(context.Background(), bytes.NewReader(binBytes))
	if err != nil {
		t.Fatal(err)
	}
	bitIdenticalPlans(t, fromJSON, fromBin, "forest")
	if !bytes.Equal(formatSnapshot(t, fromBin, SaveJSON), jsonBytes) {
		t.Fatal("forest binary→json re-encode is not byte-identical")
	}
	if !bytes.Equal(formatSnapshot(t, fromBin, SaveBinary), binBytes) {
		t.Fatal("forest binary re-encode is not byte-stable")
	}
}

// TestSaveFormatUntrained: with no model, every format produces the
// identical (slot-free) artifact.
func TestSaveFormatUntrained(t *testing.T) {
	sys, err := NewSystem(testSpec(), TrainNone)
	if err != nil {
		t.Fatal(err)
	}
	jsonBytes := formatSnapshot(t, sys, SaveJSON)
	for _, f := range []SaveFormat{SaveBinary, SaveBoth} {
		if !bytes.Equal(formatSnapshot(t, sys, f), jsonBytes) {
			t.Fatalf("untrained %s snapshot differs from JSON", f)
		}
	}
	if err := sys.SnapshotFormat(&bytes.Buffer{}, SaveFormat("yaml")); err == nil {
		t.Fatal("unknown save format accepted")
	}
	if _, err := ParseSaveFormat("binary"); err != nil {
		t.Fatal(err)
	}
}
