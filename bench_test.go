package merchandiser

// One benchmark per table and figure of the paper's evaluation (Section 7),
// plus the §7.2 overhead microbenchmark and the ablation benches DESIGN.md
// calls out. The benchmarks run the experiment harnesses at reduced scale
// (Quick mode) and report simulated-makespan metrics alongside wall time,
// so `go test -bench=. -benchmem` regenerates every experiment.

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"merchandiser/internal/corpus"
	"merchandiser/internal/experiments"
	"merchandiser/internal/hm"
	"merchandiser/internal/ml"
	"merchandiser/internal/model"
	"merchandiser/internal/placement"
	"merchandiser/internal/pmc"
)

func benchCfg() experiments.Config {
	return experiments.Config{Quick: true, Seed: 1, StepSec: 0.0005}
}

// benchArtifacts trains the correlation function once per benchmark
// process.
var benchArt *experiments.Artifacts

func artifacts(b *testing.B) *experiments.Artifacts {
	b.Helper()
	if benchArt == nil {
		a, err := experiments.Prepare(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		benchArt = a
	}
	return benchArt
}

var benchEval *experiments.Eval

func evaluation(b *testing.B) *experiments.Eval {
	b.Helper()
	if benchEval == nil {
		e, err := experiments.RunEvaluation(context.Background(), artifacts(b), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		benchEval = e
	}
	return benchEval
}

func BenchmarkTable1PatternDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(io.Discard, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ApplicationFootprints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(io.Discard, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3PhaseSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(context.Background(), io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Phase == "writeback" {
				b.ReportMetric(r.T50, "writeback-T50-rel")
			}
		}
	}
}

func BenchmarkFig4OverallPerformance(b *testing.B) {
	art := artifacts(b)
	for i := 0; i < b.N; i++ {
		eval, err := experiments.RunEvaluation(context.Background(), art, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		experiments.Fig4(io.Discard, eval)
		b.ReportMetric(eval.MeanSpeedup("Merchandiser"), "merch-speedup")
		b.ReportMetric(eval.MeanSpeedup("MemoryOptimizer"), "memopt-speedup")
		b.ReportMetric(eval.MeanSpeedup("MemoryMode"), "memmode-speedup")
	}
}

func BenchmarkFig5LoadBalance(b *testing.B) {
	eval := evaluation(b)
	for i := 0; i < b.N; i++ {
		experiments.Fig5(io.Discard, eval)
		b.ReportMetric(eval.Runs["SpGEMM"]["Merchandiser"].ACV, "spgemm-merch-acv")
		b.ReportMetric(eval.Runs["SpGEMM"]["MemoryOptimizer"].ACV, "spgemm-memopt-acv")
	}
}

func BenchmarkFig6Bandwidth(b *testing.B) {
	eval := evaluation(b)
	for i := 0; i < b.N; i++ {
		experiments.Fig6(io.Discard, eval)
		b.ReportMetric(experiments.AvgBandwidth(eval.Runs["WarpX"]["Merchandiser"], hm.DRAM), "merch-dram-GBs")
		b.ReportMetric(experiments.AvgBandwidth(eval.Runs["WarpX"]["MemoryOptimizer"], hm.DRAM), "memopt-dram-GBs")
	}
}

func BenchmarkTable3ModelSelection(b *testing.B) {
	art := artifacts(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(context.Background(), io.Discard, art, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Model == "GBR" {
				b.ReportMetric(r.R2, "gbr-r2")
			}
		}
	}
}

func BenchmarkFig7EventSelection(b *testing.B) {
	art := artifacts(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig7(context.Background(), io.Discard, art, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Events == 8 {
				b.ReportMetric(p.RegularR2, "regular-r2-8ev")
				b.ReportMetric(p.IrregularR2, "irregular-r2-8ev")
			}
		}
	}
}

func BenchmarkTable4ModelAccuracy(b *testing.B) {
	eval := evaluation(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(io.Discard, eval)
		if err != nil {
			b.Fatal(err)
		}
		var avg float64
		for _, r := range rows {
			avg += r.Model
		}
		b.ReportMetric(avg/float64(len(rows))*100, "model-accuracy-%")
	}
}

// BenchmarkPredictionOverhead measures one Equation 1 + Equation 2
// prediction — the §7.2 claim that the online modeling costs ~0.03 ms per
// decision.
func BenchmarkPredictionOverhead(b *testing.B) {
	art := artifacts(b)
	ev := pmc.Counters{Values: map[string]float64{}}
	for _, e := range pmc.SelectedEvents {
		ev.Values[e] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := model.EstimateAccesses(1e7, 64<<20, 80<<20, 1.2)
		_ = art.Perf.Predict(3.0, 1.0, ev, est/(2e7))
	}
}

// BenchmarkAlgorithm1 measures one full greedy partitioning over 24 tasks.
func BenchmarkAlgorithm1(b *testing.B) {
	art := artifacts(b)
	tasks := make([]placement.TaskInput, 24)
	for i := range tasks {
		tasks[i] = placement.TaskInput{
			Name: string(rune('a' + i)), TPmOnly: 2 + float64(i%5), TDramOnly: 1,
			TotalAccesses: 1e7, FootprintPages: 2000,
			Events: pmc.Counters{Values: map[string]float64{}},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.GreedyLoadBalance(tasks, 2048, art.Perf, placement.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the SpGEMM ablation harness (Algorithm 1 step
// size, trained vs linear f, α refinement, page mapping, task semantics)
// and reports each variant's simulated end-to-end time.
func BenchmarkAblations(b *testing.B) {
	art := artifacts(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(context.Background(), io.Discard, art, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name := strings.NewReplacer(" ", "-", "%", "pct", "(", "", ")", "").Replace(r.Variant)
			b.ReportMetric(r.TotalTime, name+"-sim-s")
		}
	}
}

// benchCorpusSpec is the compact training platform (what System
// construction uses for corpus generation).
func benchCorpusSpec() hm.SystemSpec {
	s := hm.DefaultSpec()
	s.Tiers[hm.DRAM].CapacityBytes = 64 << 20
	s.Tiers[hm.PM].CapacityBytes = 512 << 20
	s.LLCBytes = 1 << 20
	return s
}

// BenchmarkCorpusBuild measures training-corpus generation serially and
// with the worker pool; the ratio is the offline-pipeline speedup on this
// machine (output is identical either way).
func BenchmarkCorpusBuild(b *testing.B) {
	regions := corpus.StandardCorpus(20, 1)
	spec := benchCorpusSpec()
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				samples, err := corpus.Build(context.Background(), regions, spec, corpus.BuildConfig{
					Placements: 4, StepSec: 0.002, Seed: 5, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(samples)), "samples")
			}
		})
	}
}

// benchSynth is a nonlinear regression problem for the model benchmarks.
func benchSynth(n, d int, seed int64) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.Float64()*2 - 1
		}
		X[i] = row
		y[i] = 3*row[0] + 2*row[1]*row[1] + math.Sin(3*row[2]) + r.NormFloat64()*0.05
	}
	return X, y
}

// BenchmarkGBRFit measures fitting the paper's selected model (GBR) at the
// Table 3 scale, serial vs pooled residual updates.
func BenchmarkGBRFit(b *testing.B) {
	X, y := benchSynth(2000, 9, 3)
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gbr := ml.NewGradientBoosted(ml.GBRConfig{NumStages: 150, MaxDepth: 4, Seed: 7, Workers: workers})
				if err := gbr.Fit(X, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGBRPredictAll measures batch inference over a test matrix —
// what R² scoring and the feature-subset search pay per candidate.
func BenchmarkGBRPredictAll(b *testing.B) {
	X, y := benchSynth(2000, 9, 3)
	gbr := ml.NewGradientBoosted(ml.GBRConfig{NumStages: 150, MaxDepth: 4, Seed: 7})
	if err := gbr.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			gbr.Config.Workers = workers
			for i := 0; i < b.N; i++ {
				_ = gbr.PredictAll(X)
			}
		})
	}
}

// BenchmarkGreedyLoadBalance measures Algorithm 1 with the trained model
// at several task counts — the memoized hot path of online placement.
func BenchmarkGreedyLoadBalance(b *testing.B) {
	art := artifacts(b)
	for _, n := range []int{8, 24, 64} {
		tasks := make([]placement.TaskInput, n)
		for i := range tasks {
			tasks[i] = placement.TaskInput{
				Name: fmt.Sprintf("t%03d", i), TPmOnly: 2 + float64(i%7), TDramOnly: 1,
				TotalAccesses: 1e7, FootprintPages: 2000,
				Events: pmc.Counters{Values: map[string]float64{}},
			}
		}
		dc := uint64(n) * 500
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := placement.GreedyLoadBalance(tasks, dc, art.Perf, placement.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
