GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check = vet + race-detector run over the concurrent packages (corpus
# worker pool, parallel ml, memoized placement, pooled evaluation).
check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
