package merchandiser

import (
	"context"

	"merchandiser/internal/merr"
	"merchandiser/internal/task"
)

// Session is one run's worth of policy state: a System plus a freshly
// minted Policy. System.Run creates one per call; create sessions
// explicitly when you need to inspect the policy after the run (e.g. a
// Merchandiser's α report) or to drive several instances of the same
// policy object through custom tooling.
//
// A Session owns mutable policy state and must not be used from more than
// one goroutine at a time. Mint a new Session per concurrent run — the
// factory is cheap.
type Session struct {
	sys *System
	pol Policy
}

// NewSession materializes a fresh policy from f for one run on this
// system.
func (s *System) NewSession(f PolicyFactory) (*Session, error) {
	if f == nil {
		return nil, merr.Errorf(merr.ErrUnknownPolicy, "merchandiser: nil policy factory")
	}
	pol, err := f.New()
	if err != nil {
		return nil, merr.Wrap(merr.ErrUnknownPolicy, "merchandiser: building policy "+f.Name(), err)
	}
	if pol == nil {
		return nil, merr.Errorf(merr.ErrUnknownPolicy, "merchandiser: factory %s returned a nil policy", f.Name())
	}
	return &Session{sys: s, pol: pol}, nil
}

// Run executes the app under this session's policy on a fresh memory.
// Cancel ctx to abort at the next engine tick; the returned error then
// satisfies errors.Is(err, context.Canceled) and no goroutine is leaked.
func (se *Session) Run(ctx context.Context, app App, opts Options) (*Result, error) {
	return task.Run(ctx, app, se.sys.Spec, se.pol, opts)
}

// Policy returns the session's policy instance, e.g. to read per-run
// reports off a Merchandiser after Run returns.
func (se *Session) Policy() Policy { return se.pol }
