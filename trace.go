package merchandiser

import (
	"merchandiser/internal/trace"
)

// TraceRecorder intercepts a workload's allocations and element accesses —
// the paper's §5.3 fallback for applications whose source is unavailable
// for static analysis. Instrument the code under study with Alloc/Touch
// calls (what dynamic binary instrumentation would insert), then derive
// access patterns for AppBuilder with ClassifyTrace.
type TraceRecorder = trace.Recorder

// TraceRegion is one intercepted allocation.
type TraceRegion = trace.Region

// TraceClassification is a recognized pattern for one traced region.
type TraceClassification = trace.Classification

// NewTraceRecorder builds an empty trace recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// ClassifyTrace recognizes each traced region's access pattern
// (stream/strided/stencil/random) from its recorded offset sequence.
// Unrecognizable traces default to Random, the §4 rule for unknown
// patterns, and are refined online by Merchandiser's α machinery.
func ClassifyTrace(r *TraceRecorder, elemSize int) []TraceClassification {
	return trace.ClassifyAll(r, elemSize)
}
