// Package merchandiser is a Go reproduction of "Merchandiser: Data
// Placement on Heterogeneous Memory for Task-Parallel HPC Applications
// with Load-Balance Awareness" (Xie, Liu, Li, Li — PPoPP 2023).
//
// It bundles a two-tier heterogeneous-memory simulator (DRAM + persistent
// memory), a task-parallel runtime with global synchronization points, the
// paper's data-placement baselines (Optane Memory Mode, an Intel
// MemoryOptimizer-style daemon, the application-specific Sparta and
// WarpX-PM policies), and Merchandiser itself: task-semantic profiling,
// input-aware memory-access estimation (Equation 1), learned performance
// modeling (Equation 2) and the greedy load-balancing partitioner
// (Algorithm 1).
//
// # Quick start
//
//	sys, err := merchandiser.NewSystem(merchandiser.DefaultSpec(), merchandiser.TrainQuick)
//	res, err := sys.Run(app, sys.Merchandiser(), merchandiser.Options{})
//
// where app implements merchandiser.App (see AppBuilder for a declarative
// way to define one, or internal/apps for the paper's five applications).
package merchandiser

import (
	"merchandiser/internal/baseline"
	"merchandiser/internal/core"
	"merchandiser/internal/hm"
	"merchandiser/internal/model"
	"merchandiser/internal/obs"
	"merchandiser/internal/task"
)

// Re-exported core types. The internal packages hold the implementations;
// these aliases are the supported public surface.
type (
	// App is a task-parallel application: long-lived objects plus a
	// sequence of task instances separated by global synchronizations.
	App = task.App
	// Policy is a data-placement policy for a run.
	Policy = task.Policy
	// Options tunes the simulation (time step, policy interval).
	Options = task.Options
	// Result is a full application run's outcome.
	Result = task.Result
	// SystemSpec describes the simulated platform.
	SystemSpec = hm.SystemSpec
	// TaskWork is one task's work for one instance.
	TaskWork = hm.TaskWork
	// Phase is a synchronization-free segment of a task.
	Phase = hm.Phase
	// PhaseAccess is one object access stream within a phase.
	PhaseAccess = hm.PhaseAccess
	// Memory is the simulated two-tier main memory.
	Memory = hm.Memory
	// Object is a registered data object.
	Object = hm.Object
	// Observer collects a run's metrics and (optionally) its event log;
	// attach one via Options.Observer. A nil Observer disables
	// observability at zero cost.
	Observer = obs.Registry
	// Metrics is a point-in-time snapshot of an Observer's metric state,
	// byte-stable under its WriteJSON for identical runs.
	Metrics = obs.Snapshot
	// TraceEvent is one chrome-trace-compatible record of an Observer's
	// event log.
	TraceEvent = obs.Event
)

// NewObserver returns an empty metrics registry. Call EnableEvents on it
// to additionally collect the chrome-trace event log, pass it as
// Options.Observer, and read results with Snapshot(false) (deterministic
// view) or Events().
func NewObserver() *Observer { return obs.New() }

// Tier identifiers, re-exported.
const (
	DRAM = hm.DRAM
	PM   = hm.PM
)

// DefaultSpec returns the scaled-down analogue of the paper's platform
// (192 MB DRAM : 1.5 GB PM at the paper's 1:8 ratio and Optane-like
// latency/bandwidth asymmetry).
func DefaultSpec() SystemSpec { return hm.DefaultSpec() }

// TrainLevel selects how much effort System construction spends training
// the correlation function f(·).
type TrainLevel int

const (
	// TrainQuick trains on a reduced corpus — seconds, accuracy in the
	// high 80s. Good for examples and tests.
	TrainQuick TrainLevel = iota
	// TrainFull trains on the paper-sized corpus (281 regions, 10
	// placements).
	TrainFull
	// TrainNone skips training; Equation 2 degrades to linear
	// interpolation between the PM-only and DRAM-only bounds.
	TrainNone
)

// System bundles a platform spec with the offline artifacts Merchandiser
// needs (the trained correlation function). Construct once, run many apps.
type System struct {
	Spec SystemSpec
	Perf *model.PerfModel
	// TrainedR2 is the held-out R² of the correlation function (0 for
	// TrainNone).
	TrainedR2 float64
}

// NewSystem builds a System for the spec, training the correlation
// function at the requested level (the paper's offline step 1) with the
// default TrainConfig — see NewSystemConfig in builder.go for the knobs.
func NewSystem(spec SystemSpec, level TrainLevel) (*System, error) {
	return NewSystemConfig(spec, TrainConfig{Level: level})
}

// Merchandiser returns the paper's policy, wired with this system's
// trained performance model.
func (s *System) Merchandiser() Policy {
	return core.New(core.Config{Spec: s.Spec, Perf: s.Perf})
}

// MerchandiserWithObserver returns the paper's policy wired to record its
// planner and migration-gate metrics into reg (pass the same registry as
// Options.Observer to get runtime, engine and planner metrics in one
// place).
func (s *System) MerchandiserWithObserver(reg *Observer) Policy {
	return core.New(core.Config{Spec: s.Spec, Perf: s.Perf, Obs: reg})
}

// PMOnly returns the slow-tier-only baseline policy.
func (s *System) PMOnly() Policy { return baseline.PMOnly{} }

// MemoryMode returns the hardware-managed DRAM-cache baseline (Optane
// Memory Mode).
func (s *System) MemoryMode() Policy { return baseline.MemoryMode{} }

// MemoryOptimizer returns the application-agnostic hot-page-migration
// baseline.
func (s *System) MemoryOptimizer() Policy {
	return baseline.NewMemoryOptimizer(baseline.DaemonConfig{})
}

// Sparta returns the application-specific static policy that pins the
// named objects (substring match) in DRAM.
func (s *System) Sparta(priorityObjects ...string) Policy {
	return &baseline.Sparta{Priority: priorityObjects}
}

// WarpXPM returns the oracle manual-placement policy.
func (s *System) WarpXPM() Policy {
	return baseline.NewWarpXPM(s.Spec.LLCBytes, 1)
}

// Run executes the app under the policy on a fresh memory with this
// system's spec.
func (s *System) Run(app App, pol Policy, opts Options) (*Result, error) {
	return task.Run(app, s.Spec, pol, opts)
}

// Estimate is a closed-form what-if answer for one task (no simulation):
// the predicted time, memory/compute split and DRAM ratio under the given
// per-access-stream DRAM fractions (nil = everything on slow memory). It
// applies the same physics as the engine and matches uncontended
// single-task simulations to within a few percent.
type Estimate = hm.Estimate

// EstimateTask computes the closed form for tw on this system.
func (s *System) EstimateTask(tw TaskWork, fracDRAM []float64) (*Estimate, error) {
	return hm.EstimateTask(s.Spec, tw, fracDRAM)
}
