// Package merchandiser is a Go reproduction of "Merchandiser: Data
// Placement on Heterogeneous Memory for Task-Parallel HPC Applications
// with Load-Balance Awareness" (Xie, Liu, Li, Li — PPoPP 2023).
//
// It bundles a two-tier heterogeneous-memory simulator (DRAM + persistent
// memory), a task-parallel runtime with global synchronization points, the
// paper's data-placement baselines (Optane Memory Mode, an Intel
// MemoryOptimizer-style daemon, the application-specific Sparta and
// WarpX-PM policies), and Merchandiser itself: task-semantic profiling,
// input-aware memory-access estimation (Equation 1), learned performance
// modeling (Equation 2) and the greedy load-balancing partitioner
// (Algorithm 1).
//
// # Quick start
//
//	sys, err := merchandiser.NewSystem(merchandiser.DefaultSpec(), merchandiser.TrainQuick)
//	res, err := sys.Run(ctx, app, sys.Merchandiser(), merchandiser.Options{})
//
// where app implements merchandiser.App (see AppBuilder for a declarative
// way to define one, or internal/apps for the paper's five applications).
//
// # Sessions and concurrency
//
// Policies carry per-run mutable state (profiles, α refiners, hotness
// scores), so the policy helpers on System return a PolicyFactory rather
// than a policy: every Run and every Compare row materializes a fresh
// policy from its factory. One System is therefore safe for any number of
// concurrent Run/Compare calls (the trained artifacts it holds are
// read-only after construction).
//
// Every run takes a context.Context; cancellation aborts the simulation
// at the next engine tick with an error satisfying
// errors.Is(err, context.Canceled). Pass context.Background() for the
// historical non-cancelable behavior — outputs are byte-identical.
package merchandiser

import (
	"context"

	"merchandiser/internal/baseline"
	"merchandiser/internal/core"
	"merchandiser/internal/hm"
	"merchandiser/internal/model"
	"merchandiser/internal/obs"
	"merchandiser/internal/task"
)

// Re-exported core types. The internal packages hold the implementations;
// these aliases are the supported public surface.
type (
	// App is a task-parallel application: long-lived objects plus a
	// sequence of task instances separated by global synchronizations.
	App = task.App
	// Policy is a data-placement policy for a run. A Policy instance holds
	// per-run state; obtain a fresh one per run via a PolicyFactory.
	Policy = task.Policy
	// Options tunes the simulation (time step, policy interval).
	Options = task.Options
	// Result is a full application run's outcome.
	Result = task.Result
	// SystemSpec describes the simulated platform.
	SystemSpec = hm.SystemSpec
	// TaskWork is one task's work for one instance.
	TaskWork = hm.TaskWork
	// Phase is a synchronization-free segment of a task.
	Phase = hm.Phase
	// PhaseAccess is one object access stream within a phase.
	PhaseAccess = hm.PhaseAccess
	// Memory is the simulated two-tier main memory.
	Memory = hm.Memory
	// Object is a registered data object.
	Object = hm.Object
	// Observer collects a run's metrics and (optionally) its event log;
	// attach one via Options.Observer. A nil Observer disables
	// observability at zero cost.
	Observer = obs.Registry
	// Metrics is a point-in-time snapshot of an Observer's metric state,
	// byte-stable under its WriteJSON for identical runs.
	Metrics = obs.Snapshot
	// TraceEvent is one chrome-trace-compatible record of an Observer's
	// event log.
	TraceEvent = obs.Event
)

// NewObserver returns an empty metrics registry. Call EnableEvents on it
// to additionally collect the chrome-trace event log, pass it as
// Options.Observer, and read results with Snapshot(false) (deterministic
// view) or Events().
func NewObserver() *Observer { return obs.New() }

// Tier identifiers, re-exported.
const (
	DRAM = hm.DRAM
	PM   = hm.PM
)

// DefaultSpec returns the scaled-down analogue of the paper's platform
// (192 MB DRAM : 1.5 GB PM at the paper's 1:8 ratio and Optane-like
// latency/bandwidth asymmetry).
func DefaultSpec() SystemSpec { return hm.DefaultSpec() }

// TrainLevel selects how much effort System construction spends training
// the correlation function f(·).
type TrainLevel int

const (
	// TrainQuick trains on a reduced corpus — seconds, accuracy in the
	// high 80s. Good for examples and tests.
	TrainQuick TrainLevel = iota
	// TrainFull trains on the paper-sized corpus (281 regions, 10
	// placements).
	TrainFull
	// TrainNone skips training; Equation 2 degrades to linear
	// interpolation between the PM-only and DRAM-only bounds.
	TrainNone
)

// String names the level as it appears in artifact provenance metadata.
func (l TrainLevel) String() string {
	switch l {
	case TrainQuick:
		return "quick"
	case TrainFull:
		return "full"
	case TrainNone:
		return "none"
	default:
		return "unknown"
	}
}

// System bundles a platform spec with the offline artifacts Merchandiser
// needs (the trained correlation function). Construct once, run many apps
// — concurrently if desired: the artifacts are read-only after
// construction and every run builds its own policy and memory.
type System struct {
	Spec SystemSpec
	Perf *model.PerfModel
	// TrainedR2 is the held-out R² of the correlation function (0 for
	// TrainNone).
	TrainedR2 float64
	// Meta is the training provenance carried into snapshots: seed, level,
	// sample count and training-feature statistics. Restore preserves it
	// verbatim.
	Meta SystemMeta
}

// NewSystem builds a System for the spec, training the correlation
// function at the requested level (the paper's offline step 1) with the
// default TrainConfig — see NewSystemConfig in builder.go for the knobs
// and for a cancelable form.
func NewSystem(spec SystemSpec, level TrainLevel) (*System, error) {
	return NewSystemConfig(context.Background(), spec, TrainConfig{Level: level})
}

// PolicyFactory mints a fresh Policy per run. Factories are stateless and
// safe for concurrent use; the policies they build are not — never share
// one Policy instance across runs.
type PolicyFactory interface {
	// Name identifies the policy this factory builds.
	Name() string
	// New returns a fresh policy instance.
	New() (Policy, error)
}

// NewFactory adapts a constructor function into a PolicyFactory — the
// hook for custom policies (see examples/extensibility).
func NewFactory(name string, make func() (Policy, error)) PolicyFactory {
	return factoryFunc{name: name, make: make}
}

type factoryFunc struct {
	name string
	make func() (Policy, error)
}

func (f factoryFunc) Name() string         { return f.name }
func (f factoryFunc) New() (Policy, error) { return f.make() }

// Merchandiser returns a factory for the paper's policy, wired with this
// system's trained performance model.
func (s *System) Merchandiser() PolicyFactory {
	return NewFactory("Merchandiser", func() (Policy, error) {
		return core.New(core.Config{Spec: s.Spec, Perf: s.Perf}), nil
	})
}

// MerchandiserWithObserver returns a factory for the paper's policy wired
// to record its planner and migration-gate metrics into reg (pass the
// same registry as Options.Observer to get runtime, engine and planner
// metrics in one place).
func (s *System) MerchandiserWithObserver(reg *Observer) PolicyFactory {
	return NewFactory("Merchandiser", func() (Policy, error) {
		return core.New(core.Config{Spec: s.Spec, Perf: s.Perf, Obs: reg}), nil
	})
}

// ReplanMode selects the epoch-based re-planning trigger for
// MerchandiserReplan: off (the historical plan-once behavior), drift
// (re-plan when observed progress projects the makespan past the
// predicted one by more than the threshold), or interval (re-plan at
// every epoch boundary regardless of drift).
type ReplanMode = core.ReplanMode

// Re-planning trigger modes.
const (
	ReplanOff      = core.ReplanOff
	ReplanDrift    = core.ReplanDrift
	ReplanInterval = core.ReplanInterval
)

// ParseReplanMode parses "off", "drift" or "interval" (empty = off).
func ParseReplanMode(s string) (ReplanMode, error) { return core.ParseReplanMode(s) }

// ReplanConfig tunes the epoch lifecycle: trigger mode, epoch length in
// policy ticks, drift threshold, migration-cost scaling and the per-
// instance re-plan budget. The zero value means off — byte-identical to
// the plan-once policy.
type ReplanConfig = core.ReplanConfig

// EpochReport records one epoch boundary's drift decision (and, when a
// re-plan was applied, its migration cost); read them from
// MerchandiserReplan policies via core's EpochReports.
type EpochReport = core.EpochReport

// EpochProgress is the engine's per-epoch progress snapshot, recorded
// into each instance's result when Options.EpochTicks > 0.
type EpochProgress = hm.EpochProgress

// MerchandiserReplan returns a factory for the paper's policy extended
// with the epoch-based re-planning lifecycle: within each instance the
// policy snapshots progress every ReplanConfig.EpochTicks policy ticks,
// measures predicted-vs-observed makespan drift, and — per the
// configured mode — re-invokes the min-makespan planner on the residual
// workload, applying the delta as migrations only when the projected win
// exceeds the migration cost. With cfg.Mode == ReplanOff the factory is
// byte-identical to Merchandiser().
func (s *System) MerchandiserReplan(cfg ReplanConfig) PolicyFactory {
	return NewFactory("Merchandiser", func() (Policy, error) {
		return core.New(core.Config{Spec: s.Spec, Perf: s.Perf, Replan: cfg}), nil
	})
}

// PMOnly returns a factory for the slow-tier-only baseline policy.
func (s *System) PMOnly() PolicyFactory {
	return NewFactory("PM-only", func() (Policy, error) {
		return baseline.PMOnly{}, nil
	})
}

// MemoryMode returns a factory for the hardware-managed DRAM-cache
// baseline (Optane Memory Mode).
func (s *System) MemoryMode() PolicyFactory {
	return NewFactory("MemoryMode", func() (Policy, error) {
		return baseline.MemoryMode{}, nil
	})
}

// MemoryOptimizer returns a factory for the application-agnostic
// hot-page-migration baseline.
func (s *System) MemoryOptimizer() PolicyFactory {
	return NewFactory("MemoryOptimizer", func() (Policy, error) {
		return baseline.NewMemoryOptimizer(baseline.DaemonConfig{}), nil
	})
}

// Sparta returns a factory for the application-specific static policy
// that pins the named objects (substring match) in DRAM.
func (s *System) Sparta(priorityObjects ...string) PolicyFactory {
	return NewFactory("Sparta", func() (Policy, error) {
		return &baseline.Sparta{Priority: priorityObjects}, nil
	})
}

// WarpXPM returns a factory for the oracle manual-placement policy.
func (s *System) WarpXPM() PolicyFactory {
	return NewFactory("WarpX-PM", func() (Policy, error) {
		return baseline.NewWarpXPM(s.Spec.LLCBytes, 1), nil
	})
}

// Run executes the app under a fresh policy minted from f, on a fresh
// memory with this system's spec. Cancel ctx to abort: the run stops at
// the next engine tick and the error satisfies
// errors.Is(err, context.Canceled).
func (s *System) Run(ctx context.Context, app App, f PolicyFactory, opts Options) (*Result, error) {
	se, err := s.NewSession(f)
	if err != nil {
		return nil, err
	}
	return se.Run(ctx, app, opts)
}

// Estimate is a closed-form what-if answer for one task (no simulation):
// the predicted time, memory/compute split and DRAM ratio under the given
// per-access-stream DRAM fractions (nil = everything on slow memory). It
// applies the same physics as the engine and matches uncontended
// single-task simulations to within a few percent.
type Estimate = hm.Estimate

// EstimateTask computes the closed form for tw on this system.
func (s *System) EstimateTask(tw TaskWork, fracDRAM []float64) (*Estimate, error) {
	return hm.EstimateTask(s.Spec, tw, fracDRAM)
}
